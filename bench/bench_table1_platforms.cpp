//===- bench/bench_table1_platforms.cpp - Table 1 reproduction ----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Prints the simulated platform specifications in the layout of the
// paper's Table 1, plus the derived machine-model quantities the
// simulator adds (peak flops, memory bandwidth, event-catalogue size).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "sim/Platform.h"

#include <cstdio>

using namespace slope;
using namespace slope::sim;

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Table 1: platform specifications");
  Platform H = Platform::intelHaswellServer();
  Platform S = Platform::intelSkylakeServer();
  std::printf("%s\n", core::renderTable1(H, S).c_str());

  TablePrinter Derived(
      {"Derived model quantity", "Haswell", "Skylake"});
  Derived.setCaption("Simulator-model extensions (not in the paper's "
                     "table; used by the kernel models).");
  Derived.addRow({"Peak DP GFLOP/s", str::compact(H.peakGflops(), 5),
                  str::compact(S.peakGflops(), 5)});
  Derived.addRow({"Memory bandwidth (GB/s)",
                  str::compact(H.MemBandwidthGBs, 4),
                  str::compact(S.MemBandwidthGBs, 4)});
  Derived.addRow({"Likwid-style events offered",
                  std::to_string(H.buildRegistry().size()),
                  std::to_string(S.buildRegistry().size())});
  std::printf("%s\n", Derived.render().c_str());
  return 0;
}
