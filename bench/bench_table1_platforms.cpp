//===- bench/bench_table1_platforms.cpp - Table 1 reproduction ----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Prints the simulated platform specifications in the layout of the
// paper's Table 1, plus the derived machine-model quantities the
// simulator adds (peak flops, memory bandwidth, event-catalogue size).
// With the `--zoo` positional it additionally prints the Class D
// platform-zoo members (AMD Zen2 and ARM big.LITTLE); the default output
// stays byte-identical to the paper's two-platform table.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "sim/Platform.h"

#include <algorithm>
#include <cstdio>

using namespace slope;
using namespace slope::sim;

int main(int Argc, char **Argv) {
  std::vector<std::string> Args = bench::parseArgs(Argc, Argv);
  bench::banner("Table 1: platform specifications");
  Platform H = Platform::intelHaswellServer();
  Platform S = Platform::intelSkylakeServer();
  std::printf("%s\n", core::renderTable1(H, S).c_str());

  TablePrinter Derived(
      {"Derived model quantity", "Haswell", "Skylake"});
  Derived.setCaption("Simulator-model extensions (not in the paper's "
                     "table; used by the kernel models).");
  Derived.addRow({"Peak DP GFLOP/s", str::compact(H.peakGflops(), 5),
                  str::compact(S.peakGflops(), 5)});
  Derived.addRow({"Memory bandwidth (GB/s)",
                  str::compact(H.MemBandwidthGBs, 4),
                  str::compact(S.MemBandwidthGBs, 4)});
  Derived.addRow({"Likwid-style events offered",
                  std::to_string(H.buildRegistry().size()),
                  std::to_string(S.buildRegistry().size())});
  std::printf("%s\n", Derived.render().c_str());

  if (std::find(Args.begin(), Args.end(), "--zoo") == Args.end())
    return 0;

  // The Class D platform zoo: same derived quantities for the non-Intel
  // members, plus the per-cluster shape of the heterogeneous board.
  Platform Z = Platform::amdZen2Server();
  Platform B = Platform::armBigLittle();
  TablePrinter Zoo({"Derived model quantity", "AMD Zen2", "ARM big.LITTLE"});
  Zoo.setCaption("Class D platform-zoo extensions (cross-architecture "
                 "transfer targets).");
  Zoo.addRow({"Processor", Z.Processor, B.Processor});
  Zoo.addRow({"Micro-architecture", microarchName(Z.Arch),
              microarchName(B.Arch)});
  Zoo.addRow({"Cores", std::to_string(Z.totalCores()),
              std::to_string(B.totalCores())});
  Zoo.addRow({"Peak DP GFLOP/s", str::compact(Z.peakGflops(), 5),
              str::compact(B.peakGflops(), 5)});
  Zoo.addRow({"PMU (programmable+fixed)",
              std::to_string(Z.NumProgrammableCounters) + "+" +
                  std::to_string(Z.NumFixedCounters),
              std::to_string(B.NumProgrammableCounters) + "+" +
                  std::to_string(B.NumFixedCounters)});
  Zoo.addRow({"Likwid-style events offered",
              std::to_string(Z.buildRegistry().size()),
              std::to_string(B.buildRegistry().size())});
  std::printf("%s\n", Zoo.render().c_str());

  TablePrinter Clusters({"Cluster", "Arch", "Cores", "Freq (GHz)",
                         "L2 (KB)", "TDP (W)", "PMU"});
  Clusters.setCaption("ARM big.LITTLE clusters (one machine per cluster "
                      "in Class D).");
  for (const ClusterSpec &C : B.Clusters)
    Clusters.addRow({C.Name, microarchName(C.Arch), std::to_string(C.Cores),
                     str::compact(C.MinFreqGHz, 3) + "-" +
                         str::compact(C.MaxFreqGHz, 3),
                     std::to_string(C.L2KB), str::compact(C.TdpWatts, 3),
                     std::to_string(C.NumProgrammableCounters) + "+" +
                         std::to_string(C.NumFixedCounters)});
  std::printf("%s\n", Clusters.render().c_str());
  return 0;
}
