#!/usr/bin/env python3
"""CI speedup gate: assert json_a's timing is >= min_ratio x json_b's.

Usage:
    check_speedup.py JSON_A JSON_B KEY MIN_RATIO LABEL [--key-b KEY_B]

JSON_A holds the slow/baseline timing, JSON_B the fast/optimized one; the
gate passes when value_a / value_b >= MIN_RATIO. KEY selects the value:

  * bench-harness JSON (bench/BenchCommon.h writeBenchJson): KEY is a
    top-level numeric field such as "tree_fit_ms", "serve_ms", "total_ms";
  * google-benchmark JSON: KEY is a benchmark name in the "benchmarks"
    list (e.g. "BM_ForestFitClassA/1") and the value is its "real_time".

--key-b reads a different key from JSON_B (defaults to KEY); pass the
same file twice with --key-b to compare two entries of one
google-benchmark report.

--tolerance-json PREFIX additionally gates *accuracy* in the same call:
every top-level numeric field of both JSONs whose name starts with PREFIX
(e.g. the serving bench's "app_energy_j_*" attribution table) must agree
within --rel-tol relative error, measured as |b - a| / max(|a|, floor)
with floor = 1e-9 x the largest |a| so near-zero entries cannot blow the
ratio up — the same definition ml::maxRelativeError uses. The gate fails
if the two files expose different PREFIX key sets or none at all (a
missing table must not pass vacuously).

On failure prints a GitHub Actions ::error:: annotation and exits 1.
"""

import argparse
import json
import sys


def load_value(path, key):
    with open(path) as f:
        doc = json.load(f)
    if key in doc:
        return float(doc[key])
    for bench in doc.get("benchmarks", []):
        if bench.get("name") == key:
            return float(bench["real_time"])
    raise SystemExit(f"::error::{path}: no top-level field or benchmark "
                     f"named {key!r}")


def numeric_fields(path, prefix):
    with open(path) as f:
        doc = json.load(f)
    return {k: float(v) for k, v in doc.items()
            if k.startswith(prefix)
            and isinstance(v, (int, float)) and not isinstance(v, bool)}


def check_tolerance(json_a, json_b, prefix, rel_tol, label):
    """Returns 0 if every PREFIX field agrees within rel_tol, else 1."""
    fields_a = numeric_fields(json_a, prefix)
    fields_b = numeric_fields(json_b, prefix)
    if not fields_a:
        print(f"::error::{label}: {json_a} has no numeric fields matching "
              f"{prefix!r}; the tolerance gate would pass vacuously")
        return 1
    if set(fields_a) != set(fields_b):
        diff = sorted(set(fields_a) ^ set(fields_b))
        print(f"::error::{label}: {prefix!r} key sets differ between "
              f"{json_a} and {json_b}: {', '.join(diff)}")
        return 1
    floor = 1e-9 * max(abs(v) for v in fields_a.values())
    worst_key, worst_err = None, -1.0
    for key in sorted(fields_a):
        denom = max(abs(fields_a[key]), floor)
        err = abs(fields_b[key] - fields_a[key]) / denom if denom > 0 else 0.0
        if err > worst_err:
            worst_key, worst_err = key, err
    print(f"{label}: {len(fields_a)} {prefix!r} fields, worst relative "
          f"error {worst_err:.3e} at {worst_key} "
          f"(required <= {rel_tol:.3e})")
    if worst_err > rel_tol:
        print(f"::error::{label}: {worst_key} differs by {worst_err:.3e} "
              f"relative ({fields_a[worst_key]} vs {fields_b[worst_key]}), "
              f"tolerance {rel_tol:.3e}")
        return 1
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("json_a", help="baseline (slow) timing JSON")
    parser.add_argument("json_b", help="optimized (fast) timing JSON")
    parser.add_argument("key", help="timing field or benchmark name")
    parser.add_argument("min_ratio", type=float,
                        help="required value_a / value_b ratio")
    parser.add_argument("label", help="human-readable gate name for logs")
    parser.add_argument("--key-b", default=None,
                        help="key to read from JSON_B (default: KEY)")
    parser.add_argument("--tolerance-json", metavar="PREFIX", default=None,
                        help="also require every top-level numeric field "
                             "starting with PREFIX to agree between the two "
                             "JSONs within --rel-tol relative error")
    parser.add_argument("--rel-tol", type=float, default=1e-4,
                        help="relative-error bound for --tolerance-json "
                             "(default: 1e-4, ml/QuantizedModel's "
                             "documented bound)")
    args = parser.parse_args()

    key_b = args.key_b if args.key_b is not None else args.key
    value_a = load_value(args.json_a, args.key)
    value_b = load_value(args.json_b, key_b)
    if value_b <= 0:
        raise SystemExit(f"::error::{args.label}: non-positive optimized "
                         f"timing {value_b}")
    ratio = value_a / value_b
    print(f"{args.label}: baseline={value_a:.1f} optimized={value_b:.1f} "
          f"ratio={ratio:.2f}x (required >= {args.min_ratio:.2f}x)")
    status = 0
    if ratio < args.min_ratio:
        print(f"::error::{args.label}: expected >= {args.min_ratio:.2f}x "
              f"speedup, got {ratio:.2f}x")
        status = 1
    if args.tolerance_json is not None:
        status |= check_tolerance(args.json_a, args.json_b,
                                  args.tolerance_json, args.rel_tol,
                                  args.label)
    return status


if __name__ == "__main__":
    sys.exit(main())
