#!/usr/bin/env python3
"""CI speedup gate: assert json_a's timing is >= min_ratio x json_b's.

Usage:
    check_speedup.py JSON_A JSON_B KEY MIN_RATIO LABEL [--key-b KEY_B]

JSON_A holds the slow/baseline timing, JSON_B the fast/optimized one; the
gate passes when value_a / value_b >= MIN_RATIO. KEY selects the value:

  * bench-harness JSON (bench/BenchCommon.h writeBenchJson): KEY is a
    top-level numeric field such as "tree_fit_ms", "serve_ms", "total_ms";
  * google-benchmark JSON: KEY is a benchmark name in the "benchmarks"
    list (e.g. "BM_ForestFitClassA/1") and the value is its "real_time".

--key-b reads a different key from JSON_B (defaults to KEY); pass the
same file twice with --key-b to compare two entries of one
google-benchmark report. On failure prints a GitHub Actions ::error::
annotation and exits 1.
"""

import argparse
import json
import sys


def load_value(path, key):
    with open(path) as f:
        doc = json.load(f)
    if key in doc:
        return float(doc[key])
    for bench in doc.get("benchmarks", []):
        if bench.get("name") == key:
            return float(bench["real_time"])
    raise SystemExit(f"::error::{path}: no top-level field or benchmark "
                     f"named {key!r}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("json_a", help="baseline (slow) timing JSON")
    parser.add_argument("json_b", help="optimized (fast) timing JSON")
    parser.add_argument("key", help="timing field or benchmark name")
    parser.add_argument("min_ratio", type=float,
                        help="required value_a / value_b ratio")
    parser.add_argument("label", help="human-readable gate name for logs")
    parser.add_argument("--key-b", default=None,
                        help="key to read from JSON_B (default: KEY)")
    args = parser.parse_args()

    key_b = args.key_b if args.key_b is not None else args.key
    value_a = load_value(args.json_a, args.key)
    value_b = load_value(args.json_b, key_b)
    if value_b <= 0:
        raise SystemExit(f"::error::{args.label}: non-positive optimized "
                         f"timing {value_b}")
    ratio = value_a / value_b
    print(f"{args.label}: baseline={value_a:.1f} optimized={value_b:.1f} "
          f"ratio={ratio:.2f}x (required >= {args.min_ratio:.2f}x)")
    if ratio < args.min_ratio:
        print(f"::error::{args.label}: expected >= {args.min_ratio:.2f}x "
              f"speedup, got {ratio:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
