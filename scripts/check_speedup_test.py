#!/usr/bin/env python3
"""Unit tests for the check_speedup.py CI gate (stdlib unittest only).

Every speedup and accuracy gate in .github/workflows/ci.yml funnels
through check_speedup.py, so a silent bug there (a key lookup that never
fails, a tolerance check that passes vacuously) would green-light every
regression at once. These tests pin the gate's contract:

  * value lookup in both supported JSON shapes (bench-harness top-level
    fields and google-benchmark "benchmarks" lists), including the
    missing-key error;
  * the pass/fail ratio decision and the --key-b cross-file key;
  * the --tolerance-json accuracy gate: within-bound pass, out-of-bound
    fail, mismatched key sets, and the no-matching-fields vacuous case.

Run directly (python3 scripts/check_speedup_test.py) or via ctest, which
registers it as scripts.check_speedup. The tests drive the script the
same way CI does — as a subprocess — so argument parsing and exit codes
are covered, not just the helper functions.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_speedup.py")


class CheckSpeedupTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write_json(self, name, doc):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_gate(self, *args):
        """Runs the gate; returns (exit_code, combined_output)."""
        proc = subprocess.run(
            [sys.executable, SCRIPT] + [str(a) for a in args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        return proc.returncode, proc.stdout

    # --- value lookup ---------------------------------------------------

    def test_top_level_field_ratio_passes(self):
        a = self.write_json("a.json", {"serve_ms": 100.0})
        b = self.write_json("b.json", {"serve_ms": 20.0})
        code, out = self.run_gate(a, b, "serve_ms", 2.0, "unit")
        self.assertEqual(code, 0, out)
        self.assertIn("ratio=5.00x", out)

    def test_ratio_below_minimum_fails(self):
        a = self.write_json("a.json", {"serve_ms": 100.0})
        b = self.write_json("b.json", {"serve_ms": 80.0})
        code, out = self.run_gate(a, b, "serve_ms", 2.0, "unit")
        self.assertEqual(code, 1, out)
        self.assertIn("::error::", out)

    def test_google_benchmark_list_lookup(self):
        doc = {"benchmarks": [
            {"name": "BM_Fit/0", "real_time": 10.0},
            {"name": "BM_Fit/1", "real_time": 50.0},
        ]}
        a = self.write_json("gb.json", doc)
        # Same file twice with --key-b: compares two entries of one report,
        # the shape the microbenchmark artifact step uses.
        code, out = self.run_gate(a, a, "BM_Fit/1", 2.0, "unit",
                                  "--key-b", "BM_Fit/0")
        self.assertEqual(code, 0, out)
        self.assertIn("ratio=5.00x", out)

    def test_missing_key_is_an_error(self):
        a = self.write_json("a.json", {"serve_ms": 100.0})
        b = self.write_json("b.json", {"serve_ms": 20.0})
        code, out = self.run_gate(a, b, "no_such_key", 2.0, "unit")
        self.assertEqual(code, 1, out)
        self.assertIn("no top-level field or benchmark", out)

    def test_key_b_reads_a_different_field(self):
        # The retrain gate's shape: refit_ms from the baseline JSON
        # against rls_update_ms from the optimized JSON.
        a = self.write_json("a.json", {"refit_ms": 600.0})
        b = self.write_json("b.json", {"rls_update_ms": 100.0})
        code, out = self.run_gate(a, b, "refit_ms", 5.0, "unit",
                                  "--key-b", "rls_update_ms")
        self.assertEqual(code, 0, out)
        self.assertIn("ratio=6.00x", out)

    def test_non_positive_optimized_timing_is_an_error(self):
        a = self.write_json("a.json", {"serve_ms": 100.0})
        b = self.write_json("b.json", {"serve_ms": 0.0})
        code, out = self.run_gate(a, b, "serve_ms", 2.0, "unit")
        self.assertEqual(code, 1, out)
        self.assertIn("non-positive", out)

    # --- --tolerance-json accuracy gate ---------------------------------

    def tolerance_pair(self, attr_b):
        a = self.write_json("tol_a.json",
                            {"serve_ms": 100.0, "attr_x": 1000.0,
                             "attr_y": 2000.0, "other": 7.0})
        b_doc = {"serve_ms": 20.0, "other": 99.0}
        b_doc.update(attr_b)
        return a, self.write_json("tol_b.json", b_doc)

    def test_tolerance_within_bound_passes(self):
        a, b = self.tolerance_pair({"attr_x": 1000.05, "attr_y": 2000.0})
        code, out = self.run_gate(a, b, "serve_ms", 2.0, "unit",
                                  "--tolerance-json", "attr_",
                                  "--rel-tol", 1e-4)
        self.assertEqual(code, 0, out)
        self.assertIn("2 'attr_' fields", out)

    def test_tolerance_out_of_bound_fails_even_when_ratio_passes(self):
        a, b = self.tolerance_pair({"attr_x": 1001.0, "attr_y": 2000.0})
        code, out = self.run_gate(a, b, "serve_ms", 2.0, "unit",
                                  "--tolerance-json", "attr_",
                                  "--rel-tol", 1e-4)
        self.assertEqual(code, 1, out)
        self.assertIn("attr_x", out)

    def test_tolerance_mismatched_key_sets_fail(self):
        a, b = self.tolerance_pair({"attr_x": 1000.0, "attr_z": 5.0})
        code, out = self.run_gate(a, b, "serve_ms", 2.0, "unit",
                                  "--tolerance-json", "attr_",
                                  "--rel-tol", 1e-4)
        self.assertEqual(code, 1, out)
        self.assertIn("key sets differ", out)
        self.assertIn("attr_y", out)
        self.assertIn("attr_z", out)

    def test_tolerance_no_matching_fields_is_not_vacuously_green(self):
        a = self.write_json("a.json", {"serve_ms": 100.0})
        b = self.write_json("b.json", {"serve_ms": 20.0})
        code, out = self.run_gate(a, b, "serve_ms", 2.0, "unit",
                                  "--tolerance-json", "attr_",
                                  "--rel-tol", 1e-4)
        self.assertEqual(code, 1, out)
        self.assertIn("vacuously", out)

    def test_tolerance_near_zero_fields_use_floored_denominator(self):
        # |b - a| / max(|a|, 1e-9 * max|a|): a tiny absolute wobble on a
        # near-zero entry must not explode the relative error while the
        # dominant entries agree.
        a = self.write_json("a.json", {"serve_ms": 100.0,
                                       "attr_big": 1e6, "attr_tiny": 0.0})
        b = self.write_json("b.json", {"serve_ms": 20.0,
                                       "attr_big": 1e6, "attr_tiny": 1e-8})
        code, out = self.run_gate(a, b, "serve_ms", 2.0, "unit",
                                  "--tolerance-json", "attr_",
                                  "--rel-tol", 1e-4)
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
