#!/usr/bin/env bash
# Refreshes the golden-table snapshots under tests/golden/ from the
# current build. Run after an INTENTIONAL table change, review the diff,
# and commit the updated snapshots together with the change that caused
# them — GoldenTablesTest byte-compares every driver against these files.
#
# Usage: scripts/update_goldens.sh [BUILD_DIR]   (default: build)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
GOLDEN_DIR="$REPO_ROOT/tests/golden"

DRIVERS=(
  bench_table1_platforms
  bench_table2_additivity
  bench_table3_lr
  bench_table4_rf
  bench_table5_nn
  bench_table6_correlation
  bench_table7a_class_b
  bench_table7b_class_c
)

cmake --build "$BUILD_DIR" --target "${DRIVERS[@]}"

mkdir -p "$GOLDEN_DIR"
for driver in "${DRIVERS[@]}"; do
  echo "capturing $driver"
  # Default flags only: the snapshots record exactly what a bare
  # invocation prints (the thread-count invariance is asserted by the
  # test, not baked into the capture).
  "$BUILD_DIR/bench/$driver" > "$GOLDEN_DIR/$driver.txt"
done

echo "done; review with: git diff tests/golden"
