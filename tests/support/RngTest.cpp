//===- tests/support/RngTest.cpp - Rng unit and property tests --------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace slope;

TEST(Rng, SameSeedSameStream) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Equal = 0;
  for (int I = 0; I < 100; ++I)
    if (A.next() == B.next())
      ++Equal;
  EXPECT_LT(Equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 10000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform(-3.5, 12.25);
    EXPECT_GE(U, -3.5);
    EXPECT_LT(U, 12.25);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng R(11);
  double Sum = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Sum += R.uniform();
  EXPECT_NEAR(Sum / N, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng R(13);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng R(15);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(R.below(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng R(17);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R.below(1), 0u);
}

TEST(Rng, GaussianMomentsMatch) {
  Rng R(19);
  const int N = 200000;
  double Sum = 0, SumSq = 0;
  for (int I = 0; I < N; ++I) {
    double G = R.gaussian();
    Sum += G;
    SumSq += G * G;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.02);
  EXPECT_NEAR(SumSq / N, 1.0, 0.03);
}

TEST(Rng, GaussianScaleAndShift) {
  Rng R(21);
  const int N = 100000;
  double Sum = 0;
  for (int I = 0; I < N; ++I)
    Sum += R.gaussian(10.0, 2.0);
  EXPECT_NEAR(Sum / N, 10.0, 0.05);
}

TEST(Rng, LognormalFactorIsPositiveWithMedianOne) {
  Rng R(23);
  const int N = 100001;
  std::vector<double> Draws;
  for (int I = 0; I < N; ++I) {
    double F = R.lognormalFactor(0.3);
    EXPECT_GT(F, 0.0);
    Draws.push_back(F);
  }
  std::sort(Draws.begin(), Draws.end());
  EXPECT_NEAR(Draws[N / 2], 1.0, 0.02); // Median of lognormal(0, s) is 1.
}

TEST(Rng, LognormalZeroSigmaIsIdentity) {
  Rng R(25);
  EXPECT_DOUBLE_EQ(R.lognormalFactor(0.0), 1.0);
}

TEST(Rng, ForkIsDeterministicPerTag) {
  Rng Parent(31);
  Rng A = Parent.fork(5);
  Rng B = Parent.fork(5);
  for (int I = 0; I < 20; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, ForkTagsAreIndependent) {
  Rng Parent(31);
  Rng A = Parent.fork(5);
  Rng B = Parent.fork(6);
  int Equal = 0;
  for (int I = 0; I < 100; ++I)
    if (A.next() == B.next())
      ++Equal;
  EXPECT_LT(Equal, 3);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng A(33), B(33);
  (void)A.fork(1);
  (void)A.fork(2);
  EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, StringForkMatchesHashTagFork) {
  Rng Parent(35);
  Rng A = Parent.fork("energy");
  Rng B = Parent.fork(hashTag("energy"));
  EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, HashTagDistinguishesStrings) {
  EXPECT_NE(hashTag("bases"), hashTag("pairs"));
  EXPECT_NE(hashTag(""), hashTag("a"));
}

// Property sweep: stream quality across many seeds — no short cycles and
// balanced bits in a small window.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, NoImmediateCycleAndBitBalance) {
  Rng R(GetParam());
  std::set<uint64_t> Window;
  int Ones = 0;
  for (int I = 0; I < 512; ++I) {
    uint64_t V = R.next();
    EXPECT_TRUE(Window.insert(V).second) << "repeated draw within 512";
    Ones += __builtin_popcountll(V);
  }
  double Fraction = Ones / (512.0 * 64.0);
  EXPECT_NEAR(Fraction, 0.5, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 2ull, 42ull,
                                           0xDEADBEEFull, 0xFFFFFFFFFFFFFFFFull,
                                           2019ull, 0x5C7Bull));
