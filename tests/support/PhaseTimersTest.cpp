//===- tests/support/PhaseTimersTest.cpp - Phase accumulator tests -------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/PhaseTimers.h"

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace slope;

namespace {

TEST(PhaseTimers, AccumulatesAndResets) {
  phaseResetAll();
  EXPECT_EQ(phaseTotalNs(Phase::ForestTreeFit), 0u);
  phaseAccumulate(Phase::ForestTreeFit, 5);
  phaseAccumulate(Phase::ForestTreeFit, 7);
  EXPECT_EQ(phaseTotalNs(Phase::ForestTreeFit), 12u);
  phaseResetAll();
  EXPECT_EQ(phaseTotalNs(Phase::ForestTreeFit), 0u);
}

TEST(PhaseTimers, ScopedPhaseChargesElapsedTime) {
  phaseResetAll();
  {
    ScopedPhase Timer(Phase::ForestTreeFit);
    // Do a sliver of work; steady_clock must observe a non-negative span.
    volatile int Sink = 0;
    for (int I = 0; I < 1000; ++I)
      Sink = Sink + I;
  }
  // Elapsed time is platform-dependent; the invariant is that the scope
  // charged something representable and further scopes only add.
  uint64_t First = phaseTotalNs(Phase::ForestTreeFit);
  { ScopedPhase Timer(Phase::ForestTreeFit); }
  EXPECT_GE(phaseTotalNs(Phase::ForestTreeFit), First);
  phaseResetAll();
}

TEST(PhaseTimers, ConcurrentAccumulationDoesNotLoseCounts) {
  phaseResetAll();
  constexpr size_t Tasks = 64;
  constexpr uint64_t PerTask = 1000;
  parallelFor(0, Tasks, 1, [](size_t) {
    for (uint64_t I = 0; I < PerTask; ++I)
      phaseAccumulate(Phase::ForestTreeFit, 1);
  });
  EXPECT_EQ(phaseTotalNs(Phase::ForestTreeFit), Tasks * PerTask);
  phaseResetAll();
}

} // namespace
