//===- tests/support/TablePrinterTest.cpp - Table rendering tests ------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace slope;

TEST(TablePrinter, RendersHeaderAndRule) {
  TablePrinter T({"A", "B"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("| A "), std::string::npos);
  EXPECT_NE(Out.find("+---"), std::string::npos);
}

TEST(TablePrinter, AlignsColumnsToWidestCell) {
  TablePrinter T({"Model", "E"});
  T.addRow({"LR1", "31.2"});
  T.addRow({"RF-long-name", "5"});
  std::string Out = T.render();
  // Every data line must have identical length (aligned table).
  size_t FirstLineLen = Out.find('\n');
  size_t Pos = 0;
  while (Pos < Out.size()) {
    size_t End = Out.find('\n', Pos);
    if (End == std::string::npos)
      break;
    if (Out[Pos] == '|' || Out[Pos] == '+') {
      EXPECT_EQ(End - Pos, FirstLineLen);
    }
    Pos = End + 1;
  }
}

TEST(TablePrinter, CaptionAppearsFirst) {
  TablePrinter T({"X"});
  T.setCaption("Table 9. Test.");
  EXPECT_EQ(T.render().rfind("Table 9. Test.\n", 0), 0u);
}

TEST(TablePrinter, CountsRows) {
  TablePrinter T({"X"});
  EXPECT_EQ(T.numRows(), 0u);
  T.addRow({"1"});
  T.addRow({"2"});
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(TablePrinter, CellContentsPreserved) {
  TablePrinter T({"PMC", "Err"});
  T.addRow({"ARITH_DIVIDER_COUNT", "80"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("ARITH_DIVIDER_COUNT"), std::string::npos);
  EXPECT_NE(Out.find("80"), std::string::npos);
}

TEST(TablePrinterDeath, RowWidthMismatchAsserts) {
  TablePrinter T({"A", "B"});
  EXPECT_DEATH(T.addRow({"only-one"}), "row width");
}
