//===- tests/support/StrTest.cpp - String helper tests -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/Str.h"

#include <gtest/gtest.h>

using namespace slope;

TEST(StrFixed, RoundsToRequestedDecimals) {
  EXPECT_EQ(str::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(str::fixed(3.145, 0), "3");
  EXPECT_EQ(str::fixed(-2.5, 1), "-2.5");
}

TEST(StrFixed, ZeroDecimalsRoundsHalfToEvenPerPrintf) {
  EXPECT_EQ(str::fixed(13.0, 0), "13");
}

TEST(StrCompact, TrimsTrailingZeros) {
  EXPECT_EQ(str::compact(31.20, 4), "31.2");
  EXPECT_EQ(str::compact(18.01, 4), "18.01");
  EXPECT_EQ(str::compact(68.5, 4), "68.5");
}

TEST(StrCompact, LimitsSignificantDigits) {
  EXPECT_EQ(str::compact(123.456, 4), "123.5");
  EXPECT_EQ(str::compact(0.00012345, 2), "0.00012");
}

TEST(StrScientific, MatchesPaperCoefficientStyle) {
  EXPECT_EQ(str::scientific(3.83e-9), "3.83E-09");
  EXPECT_EQ(str::scientific(5.3e-7), "5.30E-07");
}

TEST(StrScientific, ZeroRendersAsPlainZero) {
  EXPECT_EQ(str::scientific(0.0), "0");
}

TEST(StrScientific, NegativeValues) {
  EXPECT_EQ(str::scientific(-1.5e3), "-1.50E+03");
}

TEST(StrPad, PadRight) {
  EXPECT_EQ(str::padRight("ab", 5), "ab   ");
  EXPECT_EQ(str::padRight("abcdef", 3), "abcdef");
}

TEST(StrPad, PadLeft) {
  EXPECT_EQ(str::padLeft("ab", 5), "   ab");
  EXPECT_EQ(str::padLeft("abcdef", 3), "abcdef");
}

TEST(StrJoin, JoinsWithSeparator) {
  EXPECT_EQ(str::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(str::join({"only"}, ","), "only");
  EXPECT_EQ(str::join({}, ","), "");
}

TEST(StrPredicates, StartsWith) {
  EXPECT_TRUE(str::startsWith("IDQ_MS_UOPS", "IDQ"));
  EXPECT_FALSE(str::startsWith("IDQ", "IDQ_MS"));
  EXPECT_TRUE(str::startsWith("anything", ""));
}

TEST(StrPredicates, Contains) {
  EXPECT_TRUE(str::contains("UOPS_EXECUTED_PORT_PORT_6", "PORT_6"));
  EXPECT_FALSE(str::contains("UOPS", "PORT"));
}

TEST(StrLower, AsciiLowercasing) {
  EXPECT_EQ(str::lower("L2_RQSTS_Miss"), "l2_rqsts_miss");
  EXPECT_EQ(str::lower(""), "");
}
