//===- tests/support/CsvTest.cpp - CSV writer tests ---------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace slope;

TEST(CsvQuote, PlainCellUnchanged) {
  EXPECT_EQ(csvQuote("hello"), "hello");
}

TEST(CsvQuote, CommaTriggersQuoting) {
  EXPECT_EQ(csvQuote("a,b"), "\"a,b\"");
}

TEST(CsvQuote, EmbeddedQuotesAreDoubled) {
  EXPECT_EQ(csvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvQuote, NewlineTriggersQuoting) {
  EXPECT_EQ(csvQuote("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, HeaderAndRows) {
  CsvWriter W({"name", "value"});
  W.addRow({"x", "1"});
  W.addRow({"y", "2"});
  EXPECT_EQ(W.str(), "name,value\nx,1\ny,2\n");
}

TEST(CsvWriter, NumericRowsRoundTrip) {
  CsvWriter W({"v"});
  W.addNumericRow({0.1});
  double Parsed = 0;
  // Skip the header line and parse back.
  std::string Text = W.str();
  std::string Cell = Text.substr(Text.find('\n') + 1);
  ASSERT_EQ(std::sscanf(Cell.c_str(), "%lf", &Parsed), 1);
  EXPECT_DOUBLE_EQ(Parsed, 0.1);
}

TEST(CsvWriter, WriteFileAndReadBack) {
  CsvWriter W({"a"});
  W.addRow({"42"});
  std::string Path = ::testing::TempDir() + "slope_csv_test.csv";
  auto Ok = W.writeFile(Path);
  ASSERT_TRUE(bool(Ok));
  std::FILE *File = std::fopen(Path.c_str(), "r");
  ASSERT_NE(File, nullptr);
  char Buffer[64] = {};
  size_t Read = std::fread(Buffer, 1, sizeof(Buffer) - 1, File);
  std::fclose(File);
  std::remove(Path.c_str());
  EXPECT_EQ(std::string(Buffer, Read), "a\n42\n");
}

TEST(CsvWriter, WriteFileReportsBadPath) {
  CsvWriter W({"a"});
  auto Result = W.writeFile("/nonexistent-dir-xyz/file.csv");
  ASSERT_FALSE(bool(Result));
  EXPECT_NE(Result.error().message().find("cannot open"), std::string::npos);
}
