//===- tests/support/ThreadPoolTest.cpp - Worker pool tests --------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "ml/NeuralNetwork.h"
#include "ml/RandomForest.h"
#include "power/RepeatedMeasurement.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>

using namespace slope;
using namespace slope::ml;

namespace {

/// Restores the global pool configuration on scope exit so tests that
/// pin the thread count do not leak it into later tests.
struct ThreadCountGuard {
  ~ThreadCountGuard() { ThreadPool::setGlobalThreadCount(0); }
};

Dataset makeSmoothData(size_t N, uint64_t Seed) {
  Rng R(Seed);
  Dataset D({"a", "b", "c"});
  for (size_t I = 0; I < N; ++I) {
    double A = R.uniform(0, 10), B = R.uniform(0, 10), C = R.uniform(0, 10);
    D.addRow({A, B, C}, 2 * A + 5 * B - 3 * C + R.gaussian(0, 0.1));
  }
  return D;
}

} // namespace

TEST(ThreadPool, CompletesEveryTaskExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Visits(1000);
  Pool.parallelFor(0, Visits.size(), 7,
                   [&](size_t I) { Visits[I].fetch_add(1); });
  for (size_t I = 0; I < Visits.size(); ++I)
    EXPECT_EQ(Visits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, CoversArbitraryRangesAndChunks) {
  ThreadPool Pool(3);
  for (size_t Begin : {size_t{0}, size_t{5}, size_t{17}})
    for (size_t Len : {size_t{0}, size_t{1}, size_t{2}, size_t{63}})
      for (size_t Chunk : {size_t{0}, size_t{1}, size_t{4}, size_t{100}}) {
        std::vector<std::atomic<int>> Visits(Begin + Len);
        Pool.parallelFor(Begin, Begin + Len, Chunk,
                         [&](size_t I) { Visits[I].fetch_add(1); });
        for (size_t I = 0; I < Begin; ++I)
          EXPECT_EQ(Visits[I].load(), 0);
        for (size_t I = Begin; I < Begin + Len; ++I)
          EXPECT_EQ(Visits[I].load(), 1)
              << "begin " << Begin << " len " << Len << " chunk " << Chunk;
      }
}

TEST(ThreadPool, InlinePoolRunsOnCaller) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.numWorkers(), 0u);
  std::thread::id Caller = std::this_thread::get_id();
  Pool.parallelFor(0, 16, 1, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
  });
}

TEST(ThreadPool, PropagatesWorkerExceptions) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(0, 256, 1,
                                [](size_t I) {
                                  if (I == 97)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives a failed loop and keeps serving work.
  std::atomic<int> Count{0};
  Pool.parallelFor(0, 32, 1, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 32);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Visits(64 * 16);
  Pool.parallelFor(0, 64, 1, [&](size_t Outer) {
    Pool.parallelFor(0, 16, 1, [&](size_t Inner) {
      Visits[Outer * 16 + Inner].fetch_add(1);
    });
  });
  for (size_t I = 0; I < Visits.size(); ++I)
    EXPECT_EQ(Visits[I].load(), 1);
}

TEST(ThreadPool, ParallelInvokeRunsEveryTaskOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Visits(37);
  std::vector<std::function<void()>> Tasks;
  for (size_t I = 0; I < Visits.size(); ++I)
    Tasks.push_back([&Visits, I] { Visits[I].fetch_add(1); });
  Pool.parallelInvoke(Tasks);
  for (size_t I = 0; I < Visits.size(); ++I)
    EXPECT_EQ(Visits[I].load(), 1) << "task " << I;
  Pool.parallelInvoke({}); // Empty task lists are a no-op.
}

TEST(ThreadPool, GlobalThreadCountOverride) {
  ThreadCountGuard Guard;
  ThreadPool::setGlobalThreadCount(3);
  EXPECT_EQ(ThreadPool::globalThreadCount(), 3u);
  EXPECT_EQ(ThreadPool::global().numThreads(), 3u);
  ThreadPool::setGlobalThreadCount(0);
  EXPECT_GE(ThreadPool::globalThreadCount(), 1u);
}

// The acceptance bar of the parallel engine: training is bit-identical
// at 1, 2, and 8 threads because every task draws from an Rng stream
// forked from the root seed and reductions run in index order.
TEST(ThreadPool, RandomForestTrainingIsThreadCountInvariant) {
  ThreadCountGuard Guard;
  Dataset D = makeSmoothData(200, 11);
  RandomForestOptions Options;
  Options.NumTrees = 40;
  Options.Seed = 7;

  std::vector<double> Predictions[3];
  double Oob[3] = {0, 0, 0};
  const unsigned Threads[3] = {1, 2, 8};
  for (int T = 0; T < 3; ++T) {
    ThreadPool::setGlobalThreadCount(Threads[T]);
    RandomForest M(Options);
    ASSERT_TRUE(bool(M.fit(D)));
    Oob[T] = M.oobMse();
    for (double X = 0; X < 10; X += 0.3)
      Predictions[T].push_back(M.predict({X, 10 - X, X / 2}));
  }
  for (int T = 1; T < 3; ++T) {
    EXPECT_EQ(Oob[0], Oob[T]) << Threads[T] << " threads";
    ASSERT_EQ(Predictions[0].size(), Predictions[T].size());
    for (size_t I = 0; I < Predictions[0].size(); ++I)
      EXPECT_EQ(Predictions[0][I], Predictions[T][I])
          << Threads[T] << " threads, probe " << I;
  }
}

TEST(ThreadPool, NeuralNetworkTrainingIsThreadCountInvariant) {
  ThreadCountGuard Guard;
  Dataset D = makeSmoothData(150, 12);
  NeuralNetworkOptions Options;
  Options.Epochs = 40;
  Options.Seed = 13;

  std::vector<double> Predictions[3];
  double Loss[3] = {0, 0, 0};
  const unsigned Threads[3] = {1, 2, 8};
  for (int T = 0; T < 3; ++T) {
    ThreadPool::setGlobalThreadCount(Threads[T]);
    NeuralNetwork M(Options);
    ASSERT_TRUE(bool(M.fit(D)));
    Loss[T] = M.finalTrainingLoss();
    for (double X = 0; X < 10; X += 0.4)
      Predictions[T].push_back(M.predict({X, 10 - X, X / 2}));
  }
  for (int T = 1; T < 3; ++T) {
    EXPECT_EQ(Loss[0], Loss[T]) << Threads[T] << " threads";
    ASSERT_EQ(Predictions[0].size(), Predictions[T].size());
    for (size_t I = 0; I < Predictions[0].size(); ++I)
      EXPECT_EQ(Predictions[0][I], Predictions[T][I])
          << Threads[T] << " threads, probe " << I;
  }
}

TEST(ThreadPool, MeasureAllRepeatedlyMatchesSerial) {
  ThreadCountGuard Guard;
  ThreadPool::setGlobalThreadCount(4);
  // Independent observables with forked streams: the parallel batch must
  // reproduce the serial loop sample for sample.
  Rng Root(42);
  auto MakeObservable = [&](uint64_t Tag) {
    auto R = std::make_shared<Rng>(Root.fork(Tag));
    return std::function<double()>([R] { return R->gaussian(100.0, 5.0); });
  };
  std::vector<std::function<double()>> Parallel, Serial;
  for (uint64_t Tag = 0; Tag < 12; ++Tag) {
    Parallel.push_back(MakeObservable(Tag));
    Serial.push_back(MakeObservable(Tag));
  }
  std::vector<power::MeasurementResult> Batch =
      power::measureAllRepeatedly(Parallel);
  ASSERT_EQ(Batch.size(), Serial.size());
  for (size_t I = 0; I < Serial.size(); ++I) {
    power::MeasurementResult One = power::measureRepeatedly(Serial[I]);
    EXPECT_EQ(Batch[I].Mean, One.Mean);
    EXPECT_EQ(Batch[I].Runs, One.Runs);
    EXPECT_EQ(Batch[I].Samples, One.Samples);
  }
}
