//===- tests/support/AlignedBufferTest.cpp - AlignedBuffer tests ----------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/AlignedBuffer.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <utility>

using namespace slope;

namespace {

bool isAligned(const void *P) {
  return reinterpret_cast<uintptr_t>(P) % SimdAlignment == 0;
}

TEST(AlignedBufferTest, StorageIsAlignedAndLinePadded) {
  AlignedBuffer<double> B;
  for (int I = 0; I < 100; ++I) {
    B.push_back(I * 0.5);
    EXPECT_TRUE(isAligned(B.data()));
    EXPECT_EQ(B.capacity() % (SimdAlignment / sizeof(double)), 0u);
    EXPECT_GE(B.capacity(), B.size());
  }
  EXPECT_EQ(B.size(), 100u);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(B[I], I * 0.5);
}

TEST(AlignedBufferTest, PaddingIsZeroFilled) {
  AlignedBuffer<double> B;
  B.resize(5, 1.25);
  // The padded region past size() must read as zero — that is what makes
  // full-width vector overreads deterministic.
  for (size_t I = B.size(); I < B.capacity(); ++I)
    EXPECT_EQ(B.data()[I], 0.0);
}

TEST(AlignedBufferTest, ResizeFillsAndShrinksKeepingCapacity) {
  AlignedBuffer<int32_t> B;
  B.resize(10, 7);
  for (size_t I = 0; I < 10; ++I)
    EXPECT_EQ(B[I], 7);
  size_t Cap = B.capacity();
  B.clear();
  EXPECT_TRUE(B.empty());
  EXPECT_EQ(B.capacity(), Cap);
  B.resize(3, 9);
  EXPECT_EQ(B.size(), 3u);
  EXPECT_EQ(B.capacity(), Cap);
}

TEST(AlignedBufferTest, CopyAndMoveAndEquality) {
  AlignedBuffer<double> A;
  for (int I = 0; I < 20; ++I)
    A.push_back(I);
  AlignedBuffer<double> Copy(A);
  EXPECT_EQ(A, Copy);
  EXPECT_TRUE(isAligned(Copy.data()));
  Copy.back() = -1;
  EXPECT_NE(A, Copy);
  AlignedBuffer<double> Moved(std::move(Copy));
  EXPECT_EQ(Moved.size(), 20u);
  EXPECT_EQ(Moved.back(), -1);
  A = Moved;
  EXPECT_EQ(A, Moved);
}

} // namespace
