//===- tests/support/CsvReaderTest.cpp - CSV parser tests -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/CsvReader.h"

#include "support/Csv.h"

#include <gtest/gtest.h>

using namespace slope;

TEST(CsvReader, ParsesSimpleDocument) {
  auto Doc = parseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(bool(Doc));
  EXPECT_EQ(Doc->Header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(Doc->numRows(), 2u);
  EXPECT_EQ(Doc->Rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvReader, ToleratesMissingTrailingNewline) {
  auto Doc = parseCsv("a\n1");
  ASSERT_TRUE(bool(Doc));
  EXPECT_EQ(Doc->numRows(), 1u);
  EXPECT_EQ(Doc->Rows[0][0], "1");
}

TEST(CsvReader, ToleratesCrlf) {
  auto Doc = parseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(bool(Doc));
  EXPECT_EQ(Doc->Rows[0][1], "2");
}

TEST(CsvReader, QuotedCellsWithCommas) {
  auto Doc = parseCsv("name\n\"a,b\"\n");
  ASSERT_TRUE(bool(Doc));
  EXPECT_EQ(Doc->Rows[0][0], "a,b");
}

TEST(CsvReader, DoubledQuotesUnescape) {
  auto Doc = parseCsv("name\n\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(bool(Doc));
  EXPECT_EQ(Doc->Rows[0][0], "say \"hi\"");
}

TEST(CsvReader, EmbeddedNewlineInsideQuotes) {
  auto Doc = parseCsv("name\n\"line1\nline2\"\n");
  ASSERT_TRUE(bool(Doc));
  EXPECT_EQ(Doc->numRows(), 1u);
  EXPECT_EQ(Doc->Rows[0][0], "line1\nline2");
}

TEST(CsvReader, RejectsRaggedRows) {
  auto Doc = parseCsv("a,b\n1\n");
  ASSERT_FALSE(bool(Doc));
  EXPECT_NE(Doc.error().message().find("row 2"), std::string::npos);
}

TEST(CsvReader, RejectsUnterminatedQuote) {
  auto Doc = parseCsv("a\n\"oops\n");
  ASSERT_FALSE(bool(Doc));
  EXPECT_NE(Doc.error().message().find("unterminated"), std::string::npos);
}

TEST(CsvReader, RejectsEmptyDocument) {
  EXPECT_FALSE(bool(parseCsv("")));
}

TEST(CsvReader, RoundTripsWriterOutput) {
  CsvWriter Writer({"pmc", "note"});
  Writer.addRow({"IDQ_MS_UOPS", "non-additive, 37%"});
  Writer.addRow({"plain", "with \"quotes\""});
  auto Doc = parseCsv(Writer.str());
  ASSERT_TRUE(bool(Doc));
  EXPECT_EQ(Doc->Rows[0][1], "non-additive, 37%");
  EXPECT_EQ(Doc->Rows[1][1], "with \"quotes\"");
}

TEST(CsvReader, ReadsFileWrittenByWriter) {
  CsvWriter Writer({"x"});
  Writer.addRow({"42"});
  std::string Path = ::testing::TempDir() + "slope_reader_test.csv";
  ASSERT_TRUE(bool(Writer.writeFile(Path)));
  auto Doc = readCsvFile(Path);
  std::remove(Path.c_str());
  ASSERT_TRUE(bool(Doc));
  EXPECT_EQ(Doc->Rows[0][0], "42");
}

TEST(CsvReader, MissingFileIsAnError) {
  auto Doc = readCsvFile("/nonexistent-dir-xyz/nope.csv");
  ASSERT_FALSE(bool(Doc));
}
