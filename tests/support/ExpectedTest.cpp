//===- tests/support/ExpectedTest.cpp - Expected<T> tests ---------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/Expected.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace slope;

TEST(Expected, SuccessHoldsValue) {
  Expected<int> E(42);
  ASSERT_TRUE(bool(E));
  EXPECT_EQ(*E, 42);
}

TEST(Expected, FailureHoldsError) {
  Expected<int> E(makeError("bad input"));
  ASSERT_FALSE(bool(E));
  EXPECT_EQ(E.error().message(), "bad input");
}

TEST(Expected, ArrowOperatorReachesMembers) {
  Expected<std::string> E(std::string("hello"));
  ASSERT_TRUE(bool(E));
  EXPECT_EQ(E->size(), 5u);
}

TEST(Expected, TakeValueMovesOut) {
  Expected<std::vector<int>> E(std::vector<int>{1, 2, 3});
  std::vector<int> V = E.takeValue();
  EXPECT_EQ(V.size(), 3u);
}

TEST(Expected, MutableDereference) {
  Expected<int> E(1);
  *E = 7;
  EXPECT_EQ(*E, 7);
}

TEST(ExpectedDeath, DereferencingErrorAsserts) {
  Expected<int> E(makeError("nope"));
  EXPECT_DEATH((void)*E, "error state");
}

TEST(ExpectedDeath, ErrorOfSuccessAsserts) {
  Expected<int> E(3);
  EXPECT_DEATH((void)E.error(), "success state");
}
