//===- tests/integration/EndToEndTest.cpp - Cross-module integration ------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Mid-size end-to-end runs across sim -> power -> pmc -> core -> ml,
// asserting the paper's qualitative findings at a scale between the unit
// tests and the full bench reproduction.
//
//===----------------------------------------------------------------------===//

#include "core/DatasetBuilder.h"
#include "core/Experiments.h"
#include "core/PmcSelector.h"
#include "core/Report.h"
#include "ml/Metrics.h"
#include "pmc/PlatformEvents.h"
#include "sim/TestSuite.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

namespace {
ClassAConfig midClassA() {
  ClassAConfig Config;
  Config.NumBaseApps = 96;
  Config.NumCompounds = 24;
  Config.NnEpochs = 150;
  Config.RfTrees = 60;
  return Config;
}

ClassBCConfig midClassBC() {
  ClassBCConfig Config;
  Config.MaxDatasetPoints = 240;
  Config.TrainRows = 195;
  Config.NnEpochs = 150;
  Config.RfTrees = 60;
  return Config;
}
} // namespace

TEST(EndToEnd, ClassATable2OrderingMatchesPaper) {
  // The paper's Table 2 error ordering:
  //   X4 (80) > X2 (37) ~ X3 (36) > X5 (14) ~ X1 (13) > X6 (10).
  ClassAResult R = runClassA(midClassA());
  ASSERT_EQ(R.AdditivityTable.size(), 6u);
  double X1 = R.AdditivityTable[0].MaxErrorPct;
  double X2 = R.AdditivityTable[1].MaxErrorPct;
  double X3 = R.AdditivityTable[2].MaxErrorPct;
  double X4 = R.AdditivityTable[3].MaxErrorPct;
  double X5 = R.AdditivityTable[4].MaxErrorPct;
  double X6 = R.AdditivityTable[5].MaxErrorPct;
  EXPECT_GT(X4, X2);
  EXPECT_GT(X4, X3);
  EXPECT_GT(X2, X5);
  EXPECT_GT(X3, X5);
  EXPECT_GT(X2, X1);
  EXPECT_GT(X3, X1);
  EXPECT_GT(X1, X6 * 0.7); // X1 and X6 are close; X6 is smallest overall.
  EXPECT_LT(X6, X5 * 1.3);
  // Magnitudes in the paper's ballpark.
  EXPECT_GT(X4, 50);
  EXPECT_LT(X6, 25);
}

TEST(EndToEnd, ClassAModelTrendMatchesPaper) {
  // Dropping non-additive PMCs improves all three families; the very
  // last single-PMC model degrades again (LR6/RF6/NN6 pattern).
  ClassAResult R = runClassA(midClassA());
  auto Check = [](const std::vector<ModelEvalRow> &Rows,
                  const char *Family) {
    double First = Rows.front().Errors.Avg;
    double BestMiddle = 1e300;
    for (size_t I = 1; I + 1 < Rows.size(); ++I)
      BestMiddle = std::min(BestMiddle, Rows[I].Errors.Avg);
    double Last = Rows.back().Errors.Avg;
    EXPECT_LT(BestMiddle, First) << Family;
    EXPECT_GT(Last, BestMiddle) << Family;
  };
  Check(R.Lr, "LR");
  Check(R.Rf, "RF");
  Check(R.Nn, "NN");
}

TEST(EndToEnd, ClassARfMaxErrorsExceedLrMaxErrors) {
  // The paper notes RF/NN maximum errors are "particularly bad" on
  // compound test apps (extrapolation failure).
  ClassAResult R = runClassA(midClassA());
  double WorstRf = 0, WorstLr = 0;
  for (size_t I = 0; I < 6; ++I) {
    WorstRf = std::max(WorstRf, R.Rf[I].Errors.Max);
    WorstLr = std::max(WorstLr, R.Lr[I].Errors.Max);
  }
  EXPECT_GT(WorstRf, 0.6 * WorstLr);
}

TEST(EndToEnd, ClassBPaModelsWinAndPna4DoesNotRescue) {
  ClassBCResult R = runClassBC(midClassBC());
  // Table 7a: A beats NA for each family.
  for (size_t I = 0; I + 1 < R.ClassB.size(); I += 2)
    EXPECT_LT(R.ClassB[I].Errors.Avg, R.ClassB[I + 1].Errors.Avg)
        << R.ClassB[I].Label;
  // Table 7b: A4 beats NA4 for each family.
  for (size_t I = 0; I + 1 < R.ClassC.size(); I += 2)
    EXPECT_LT(R.ClassC[I].Errors.Avg, R.ClassC[I + 1].Errors.Avg)
        << R.ClassC[I].Label;
  // The paper's conclusion: correlation-based selection of non-additive
  // PMCs does not materially improve over the full PNA set.
  double LrNa = R.ClassB[1].Errors.Avg;
  double LrNa4 = R.ClassC[1].Errors.Avg;
  EXPECT_GT(LrNa4, 0.5 * LrNa);
}

TEST(EndToEnd, CorrelationSpreadMatchesTable6Shape) {
  ClassBCResult R = runClassBC(midClassBC());
  // Most PA events are strongly correlated with energy...
  size_t StrongPa = 0;
  for (const PmcCorrelationRow &Row : R.Pa)
    if (Row.Correlation > 0.9)
      ++StrongPa;
  EXPECT_GE(StrongPa, 5u);
  // ... while the L3-miss event is weak/negative (paper: -0.112).
  for (const PmcCorrelationRow &Row : R.Pa)
    if (Row.Name == "MEM_LOAD_RETIRED_L3_MISS") {
      EXPECT_LT(Row.Correlation, 0.3);
    }
  // And several PNA events are ALSO highly correlated — that is the
  // paper's point: correlation alone cannot identify reliable PMCs.
  size_t StrongPna = 0;
  for (const PmcCorrelationRow &Row : R.Pna)
    if (Row.Correlation > 0.9)
      ++StrongPna;
  EXPECT_GE(StrongPna, 3u);
}

TEST(EndToEnd, ReportsRenderForMidSizeResults) {
  ClassAResult A = runClassA(midClassA());
  ClassBCResult B = runClassBC(midClassBC());
  EXPECT_FALSE(renderTable2(A).empty());
  EXPECT_FALSE(renderModelFamilyTable("T3", A.Lr, true).empty());
  EXPECT_FALSE(renderTable6(B).empty());
  EXPECT_FALSE(renderTable7(B).empty());
}

TEST(EndToEnd, FullPipelineByHand) {
  // Assemble the pipeline manually (as a library user would): machine,
  // meter, dataset, selector, model, evaluation.
  Machine M(Platform::intelSkylakeServer(), 42);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
  DatasetBuilder Builder(M, Meter);

  std::vector<CompoundApplication> Apps;
  for (uint64_t N = 7000; N <= 19000; N += 1000)
    Apps.emplace_back(Application(KernelKind::MklDgemm, N));
  auto Data = Builder.buildByName(Apps, pmc::skylakePaNames());
  ASSERT_TRUE(bool(Data));

  auto [Train, Test] = Data->splitAt(10);
  ml::LinearRegression Model;
  ASSERT_TRUE(bool(Model.fit(Train)));
  stats::ErrorSummary S = ml::evaluateModel(Model, Test);
  EXPECT_LT(S.Avg, 15.0); // Application-specific additive-PMC LR is good.
}
