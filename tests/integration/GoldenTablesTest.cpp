//===- tests/integration/GoldenTablesTest.cpp - Golden-table regression ---------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Golden-table regression harness: re-runs every paper-table bench driver
// and byte-compares its stdout against the snapshot under tests/golden/.
// Each driver runs at 1 and 4 threads, so the harness simultaneously
// enforces the house invariant that table output is bit-identical at any
// thread count. A failure prints a line-level diff; refresh snapshots
// with scripts/update_goldens.sh after an intentional table change.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// The eight paper-table drivers with golden snapshots.
const char *const GoldenDrivers[] = {
    "bench_table1_platforms", "bench_table2_additivity",
    "bench_table3_lr",        "bench_table4_rf",
    "bench_table5_nn",        "bench_table6_correlation",
    "bench_table7a_class_b",  "bench_table7b_class_c",
};

/// Runs \p Command and captures its stdout (stderr is left alone so test
/// logs still show driver warnings).
std::string capture(const std::string &Command, int &ExitCode) {
  std::string Output;
  std::FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe) {
    ExitCode = -1;
    return Output;
  }
  char Buffer[4096];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), Pipe)) > 0)
    Output.append(Buffer, N);
  ExitCode = pclose(Pipe);
  return Output;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line))
    Lines.push_back(Line);
  return Lines;
}

/// A compact line diff so drift is diagnosable straight from the CI log.
std::string firstDifference(const std::string &Expected,
                            const std::string &Actual) {
  std::vector<std::string> Want = splitLines(Expected);
  std::vector<std::string> Got = splitLines(Actual);
  std::ostringstream Out;
  size_t Lines = std::max(Want.size(), Got.size());
  for (size_t I = 0; I < Lines; ++I) {
    const std::string *W = I < Want.size() ? &Want[I] : nullptr;
    const std::string *G = I < Got.size() ? &Got[I] : nullptr;
    if (W && G && *W == *G)
      continue;
    Out << "first drift at line " << (I + 1) << ":\n";
    Out << "  golden: " << (W ? *W : "<missing>") << "\n";
    Out << "  actual: " << (G ? *G : "<missing>") << "\n";
    return Out.str();
  }
  return "outputs differ only in trailing bytes (line split identical)";
}

class GoldenTables : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(GoldenTables, MatchesSnapshotAtOneAndFourThreads) {
  const std::string Driver = GetParam();
  const std::string Golden =
      std::string(SLOPE_GOLDEN_DIR) + "/" + Driver + ".txt";
  std::string Expected = readFile(Golden);
  ASSERT_FALSE(Expected.empty())
      << "missing or empty golden snapshot: " << Golden
      << " (run scripts/update_goldens.sh)";

  for (unsigned Threads : {1u, 4u}) {
    std::string Command = std::string(SLOPE_BENCH_DIR) + "/" + Driver +
                          " --threads " + std::to_string(Threads);
    int ExitCode = 0;
    std::string Actual = capture(Command, ExitCode);
    ASSERT_EQ(ExitCode, 0) << Driver << " failed at --threads " << Threads;
    EXPECT_EQ(Expected, Actual)
        << Driver << " drifted from " << Golden << " at --threads "
        << Threads << "\n"
        << firstDifference(Expected, Actual)
        << "\nIf the change is intentional, refresh with "
           "scripts/update_goldens.sh.";
  }
}

INSTANTIATE_TEST_SUITE_P(PaperTables, GoldenTables,
                         ::testing::ValuesIn(GoldenDrivers),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });
