//===- tests/core/AdditivityStudyTest.cpp - Platform-scan tests -----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/AdditivityStudy.h"

#include "sim/TestSuite.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

namespace {
AdditivityStudyResult haswellStudy(size_t NumBases = 12,
                                   size_t NumCompounds = 6) {
  Machine M(Platform::intelHaswellServer(), 99);
  Rng R(99);
  std::vector<Application> Bases =
      diverseBaseSuite(M.platform(), NumBases, R.fork("b"));
  return runAdditivityStudy(
      M, makeCompoundSuite(Bases, NumCompounds, R.fork("p")));
}
} // namespace

TEST(AdditivityStudy, TestsEverySignificantEvent) {
  AdditivityStudyResult Study = haswellStudy();
  EXPECT_EQ(Study.numTested(), 151u);
}

TEST(AdditivityStudy, ClassCountsPartitionTheResults) {
  AdditivityStudyResult Study = haswellStudy();
  EXPECT_EQ(Study.NumAdditive + Study.NumNonAdditive +
                Study.NumNonReproducible + Study.NumInsignificant,
            Study.numTested());
}

TEST(AdditivityStudy, PredecessorFindingHolds) {
  // Shahid et al. 2017: many PMCs potentially additive, a considerable
  // number not.
  AdditivityStudyResult Study = haswellStudy(24, 12);
  EXPECT_GT(Study.NumAdditive, 20u);
  EXPECT_GT(Study.NumNonAdditive, 20u);
}

TEST(AdditivityStudy, DgemmFftIsMuchFriendlier) {
  Machine M(Platform::intelSkylakeServer(), 100);
  Rng R(100);
  std::vector<Application> Bases = dgemmFftAdditivityBases(12);
  AdditivityStudyResult Study =
      runAdditivityStudy(M, makeCompoundSuite(Bases, 8, R));
  // The optimized-kernel pair leaves most of the catalogue additive.
  EXPECT_GT(Study.NumAdditive, Study.NumNonAdditive);
}

TEST(AdditivityStudy, HistogramCoversDeterministicEvents) {
  AdditivityStudyResult Study = haswellStudy();
  std::vector<size_t> Histogram =
      Study.errorHistogram({0, 5, 20, 100});
  size_t Total = std::accumulate(Histogram.begin(), Histogram.end(),
                                 size_t{0});
  EXPECT_EQ(Total, Study.NumAdditive + Study.NumNonAdditive);
}

TEST(AdditivityStudy, HistogramBucketBoundariesRespectTolerance) {
  AdditivityStudyResult Study = haswellStudy();
  // Bucket [0, 5) must equal the additive count when tolerance is 5%.
  std::vector<size_t> Histogram = Study.errorHistogram({0, 5, 1e9});
  EXPECT_EQ(Histogram[0], Study.NumAdditive);
}
