//===- tests/core/PmcSelectorTest.cpp - Selector tests --------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/PmcSelector.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::core;
using namespace slope::ml;

namespace {
AdditivityResult result(const std::string &Name, double ErrorPct,
                        bool Deterministic = true, bool Significant = true) {
  AdditivityResult R;
  R.Name = Name;
  R.MaxErrorPct = ErrorPct;
  R.Deterministic = Deterministic;
  R.Significant = Significant;
  R.Additive = Deterministic && Significant && ErrorPct <= 5.0;
  return R;
}

/// The paper's Table 2 numbers.
std::vector<AdditivityResult> table2() {
  return {result("IDQ_MITE_UOPS", 13), result("IDQ_MS_UOPS", 37),
          result("ICACHE_64B_IFTAG_MISS", 36),
          result("ARITH_DIVIDER_COUNT", 80), result("L2_RQSTS_MISS", 14),
          result("UOPS_EXECUTED_PORT_PORT_6", 10)};
}
} // namespace

TEST(RankByAdditivity, SortsAscendingByError) {
  std::vector<AdditivityResult> Ranked = rankByAdditivity(table2());
  EXPECT_EQ(Ranked.front().Name, "UOPS_EXECUTED_PORT_PORT_6");
  EXPECT_EQ(Ranked.back().Name, "ARITH_DIVIDER_COUNT");
}

TEST(RankByAdditivity, NonDeterministicEventsSinkToTheEnd) {
  std::vector<AdditivityResult> Results = table2();
  Results.push_back(result("NOISY", 1.0, /*Deterministic=*/false));
  std::vector<AdditivityResult> Ranked = rankByAdditivity(Results);
  EXPECT_EQ(Ranked.back().Name, "NOISY");
}

TEST(SelectMostAdditive, PicksTopK) {
  std::vector<std::string> Top = selectMostAdditive(table2(), 2);
  ASSERT_EQ(Top.size(), 2u);
  EXPECT_EQ(Top[0], "UOPS_EXECUTED_PORT_PORT_6");
  EXPECT_EQ(Top[1], "IDQ_MITE_UOPS");
}

TEST(NestedSubsets, MatchesPaperDropOrder) {
  // Table 3 of the paper: LR2 drops X4 (80%), LR3 drops X2 (37%), LR4
  // drops X3 (36%), LR5 drops X5 (14%), LR6 keeps only X6 (10%).
  std::vector<std::vector<std::string>> Families =
      nestedSubsetsByAdditivity(table2());
  ASSERT_EQ(Families.size(), 6u);
  EXPECT_EQ(Families[0].size(), 6u);
  // LR2: everything but the divider.
  EXPECT_EQ(Families[1],
            (std::vector<std::string>{"IDQ_MITE_UOPS", "IDQ_MS_UOPS",
                                      "ICACHE_64B_IFTAG_MISS",
                                      "L2_RQSTS_MISS",
                                      "UOPS_EXECUTED_PORT_PORT_6"}));
  // LR5: {X1, X6}.
  EXPECT_EQ(Families[4], (std::vector<std::string>{
                             "IDQ_MITE_UOPS", "UOPS_EXECUTED_PORT_PORT_6"}));
  // LR6: the single most additive PMC.
  EXPECT_EQ(Families[5],
            (std::vector<std::string>{"UOPS_EXECUTED_PORT_PORT_6"}));
}

TEST(NestedSubsets, PreservesPresentationOrder) {
  std::vector<std::vector<std::string>> Families =
      nestedSubsetsByAdditivity(table2());
  // Families keep the X1..X6 listing order of the input.
  EXPECT_EQ(Families[2],
            (std::vector<std::string>{"IDQ_MITE_UOPS",
                                      "ICACHE_64B_IFTAG_MISS",
                                      "L2_RQSTS_MISS",
                                      "UOPS_EXECUTED_PORT_PORT_6"}));
}

namespace {
Dataset makeCorrelationToy() {
  // energy = strongly tied to f1, weakly to f2, anti-tied to f3.
  Dataset D({"f1", "f2", "f3"});
  for (int I = 1; I <= 20; ++I) {
    double X = I;
    D.addRow({X, (I % 3) * 10.0, -X}, 5 * X);
  }
  return D;
}
} // namespace

TEST(EnergyCorrelations, SignsAndMagnitudes) {
  std::vector<double> Corr = energyCorrelations(makeCorrelationToy());
  ASSERT_EQ(Corr.size(), 3u);
  EXPECT_NEAR(Corr[0], 1.0, 1e-12);
  EXPECT_LT(std::fabs(Corr[1]), 0.5);
  EXPECT_NEAR(Corr[2], -1.0, 1e-12);
}

TEST(SelectMostCorrelated, PositiveRankingByDefault) {
  std::vector<std::string> Top = selectMostCorrelated(makeCorrelationToy(), 2);
  ASSERT_EQ(Top.size(), 2u);
  EXPECT_EQ(Top[0], "f1");
  EXPECT_EQ(Top[1], "f2"); // f3 is highly anti-correlated: ranked last.
}

TEST(SelectMostCorrelated, AbsoluteRankingPromotesAnticorrelated) {
  std::vector<std::string> Top =
      selectMostCorrelated(makeCorrelationToy(), 2, /*Absolute=*/true);
  EXPECT_EQ(Top[0], "f1");
  EXPECT_EQ(Top[1], "f3");
}

TEST(SelectByPcaLoading, ReturnsRequestedCount) {
  std::vector<std::string> Top = selectByPcaLoading(makeCorrelationToy(), 2);
  EXPECT_EQ(Top.size(), 2u);
}

TEST(SelectByPcaLoading, IgnoresEnergyEntirely) {
  // PCA sees only the feature space: flipping every target must not
  // change the selection.
  Dataset Flipped({"f1", "f2", "f3"});
  Dataset Toy = makeCorrelationToy();
  for (size_t R = 0; R < Toy.numRows(); ++R)
    Flipped.addRow(Toy.row(R), -Toy.target(R));
  EXPECT_EQ(selectByPcaLoading(Toy, 2), selectByPcaLoading(Flipped, 2));
}

TEST(SelectByPcaLoading, PrefersHighVarianceStructure) {
  // f1/f2 form a strong shared component; f3 is tiny independent noise
  // that standardization alone cannot promote past the shared component.
  Rng R(5);
  Dataset D({"f1", "f2", "f3"});
  for (int I = 0; I < 200; ++I) {
    double Shared = R.gaussian();
    D.addRow({Shared, Shared + 0.01 * R.gaussian(), R.gaussian()}, 1.0);
  }
  std::vector<std::string> Top = selectByPcaLoading(D, 2, 0.8);
  EXPECT_TRUE((Top[0] == "f1" || Top[0] == "f2"));
  EXPECT_TRUE((Top[1] == "f1" || Top[1] == "f2"));
}
