//===- tests/core/ResultsIoTest.cpp - Result archival tests ---------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/ResultsIo.h"

#include "support/CsvReader.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace slope;
using namespace slope::core;

namespace {
ClassAResult makeClassA() {
  ClassAResult Result;
  AdditivityResult Add;
  Add.Name = "ARITH_DIVIDER_COUNT";
  Add.MaxErrorPct = 80;
  Add.WorstCv = 0.02;
  Add.Additive = false;
  Result.AdditivityTable.push_back(Add);
  ModelEvalRow Row;
  Row.Label = "LR5";
  Row.Pmcs = {"IDQ_MITE_UOPS", "UOPS_EXECUTED_PORT_PORT_6"};
  Row.Errors = {2.5, 18.01, 89.45};
  Result.Lr.push_back(Row);
  return Result;
}

ClassBCResult makeClassBC() {
  ClassBCResult Result;
  Result.Pa.push_back({"UOPS_EXECUTED_CORE", 0.993, 1.6, true});
  Result.Pna.push_back({"IDQ_MS_UOPS", 0.99, 41.4, false});
  ModelEvalRow Row;
  Row.Label = "NN-A4";
  Row.Pmcs = {"A", "B"};
  Row.Errors = {0.003, 11.46, 152.2};
  Result.ClassC.push_back(Row);
  return Result;
}
} // namespace

TEST(ResultsIo, ClassACsvParsesBack) {
  auto Doc = parseCsv(classAResultToCsv(makeClassA()));
  ASSERT_TRUE(bool(Doc));
  EXPECT_EQ(Doc->numColumns(), 7u);
  ASSERT_EQ(Doc->numRows(), 2u);
  EXPECT_EQ(Doc->Rows[0][0], "additivity");
  EXPECT_EQ(Doc->Rows[0][2], "ARITH_DIVIDER_COUNT");
  EXPECT_EQ(Doc->Rows[1][0], "model");
  EXPECT_EQ(Doc->Rows[1][1], "LR");
}

TEST(ResultsIo, ModelRowCarriesErrorTriple) {
  auto Doc = parseCsv(classAResultToCsv(makeClassA()));
  ASSERT_TRUE(bool(Doc));
  EXPECT_DOUBLE_EQ(std::stod(Doc->Rows[1][4]), 2.5);
  EXPECT_DOUBLE_EQ(std::stod(Doc->Rows[1][5]), 18.01);
  EXPECT_DOUBLE_EQ(std::stod(Doc->Rows[1][6]), 89.45);
}

TEST(ResultsIo, PmcListJoinedWithSemicolons) {
  auto Doc = parseCsv(classAResultToCsv(makeClassA()));
  ASSERT_TRUE(bool(Doc));
  EXPECT_EQ(Doc->Rows[1][3],
            "IDQ_MITE_UOPS;UOPS_EXECUTED_PORT_PORT_6");
}

TEST(ResultsIo, ClassBCCsvHasCorrelationAndModelRows) {
  auto Doc = parseCsv(classBCResultToCsv(makeClassBC()));
  ASSERT_TRUE(bool(Doc));
  ASSERT_EQ(Doc->numRows(), 3u);
  EXPECT_EQ(Doc->Rows[0][1], "PA");
  EXPECT_EQ(Doc->Rows[1][1], "PNA");
  EXPECT_EQ(Doc->Rows[1][3], "non-additive");
  EXPECT_EQ(Doc->Rows[2][2], "NN-A4");
}

TEST(ResultsIo, WriteFileRoundTrip) {
  std::string Path = ::testing::TempDir() + "slope_results.csv";
  ASSERT_TRUE(bool(writeResultCsv(classAResultToCsv(makeClassA()), Path)));
  auto Doc = readCsvFile(Path);
  std::remove(Path.c_str());
  ASSERT_TRUE(bool(Doc));
  EXPECT_EQ(Doc->numRows(), 2u);
}

TEST(ResultsIo, WriteFileBadPathFails) {
  EXPECT_FALSE(
      bool(writeResultCsv("kind\n", "/nonexistent-dir-xyz/r.csv")));
}
