//===- tests/core/DerivedMetricsTest.cpp - Derived metric tests -----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/DerivedMetrics.h"

#include "core/PmcProfiler.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;

namespace {
double metricValue(const std::vector<DerivedMetric> &Metrics,
                   const std::string &Name) {
  for (const DerivedMetric &Metric : Metrics)
    if (Metric.Name == Name)
      return Metric.Value;
  ADD_FAILURE() << "metric '" << Name << "' not found";
  return 0;
}
} // namespace

TEST(DerivedMetrics, FlopsGroupComputesGflops) {
  PerformanceGroup Group = *findGroup(haswellPerformanceGroups(),
                                      "FLOPS_DP");
  // Scalar 1e9, packed 3e9, ports irrelevant, 2 seconds.
  std::vector<double> Counts = {1e9, 3e9, 0, 0};
  std::vector<DerivedMetric> Metrics =
      computeDerivedMetrics(Group, Counts, 2.0);
  EXPECT_DOUBLE_EQ(metricValue(Metrics, "DP GFLOP/s"), 2.0);
  EXPECT_DOUBLE_EQ(metricValue(Metrics, "Runtime (s)"), 2.0);
}

TEST(DerivedMetrics, MemGroupComputesBandwidth) {
  PerformanceGroup Group = *findGroup(haswellPerformanceGroups(), "MEM");
  // 1e9 read CAS + 5e8 write CAS in 1 s -> 64 + 32 GB/s.
  std::vector<double> Counts = {1e9, 5e8};
  std::vector<DerivedMetric> Metrics =
      computeDerivedMetrics(Group, Counts, 1.0);
  EXPECT_DOUBLE_EQ(metricValue(Metrics, "Memory read bandwidth (GB/s)"),
                   64.0);
  EXPECT_DOUBLE_EQ(metricValue(Metrics, "Memory bandwidth (GB/s)"), 96.0);
}

TEST(DerivedMetrics, BranchGroupComputesMispredictionRatio) {
  PerformanceGroup Group = *findGroup(haswellPerformanceGroups(),
                                      "BRANCH");
  std::vector<double> Counts = {1e10, 1.2e8};
  std::vector<DerivedMetric> Metrics =
      computeDerivedMetrics(Group, Counts, 4.0);
  EXPECT_DOUBLE_EQ(metricValue(Metrics, "Branch misprediction ratio"),
                   0.012);
}

TEST(DerivedMetrics, GenericRatesAlwaysPresent) {
  PerformanceGroup Group = *findGroup(haswellPerformanceGroups(), "TLB");
  std::vector<double> Counts = {2e6, 8e6};
  std::vector<DerivedMetric> Metrics =
      computeDerivedMetrics(Group, Counts, 2.0);
  EXPECT_DOUBLE_EQ(
      metricValue(Metrics, "ITLB_MISSES_MISS_CAUSES_A_WALK (M/s)"), 1.0);
}

TEST(DerivedMetrics, EndToEndDgemmFlopsMatchTheKernelModel) {
  // Profile MKL DGEMM with the FLOPS_DP group and check the derived
  // flop rate against the analytic 2N^3 / time.
  sim::Machine M(sim::Platform::intelSkylakeServer(), 5);
  PmcProfiler Profiler(M);
  PerformanceGroup Group = *findGroup(skylakePerformanceGroups(),
                                      "FLOPS_DP");
  auto Ids = resolveGroup(M.registry(), Group);
  ASSERT_TRUE(bool(Ids));
  sim::Application App(sim::KernelKind::MklDgemm, 12000);
  auto Profile = Profiler.collect(sim::CompoundApplication(App), *Ids);
  ASSERT_TRUE(bool(Profile));
  std::vector<DerivedMetric> Metrics = computeDerivedMetrics(
      Group, Profile->Counts, Profile->TimeSec);
  double Expected = 2.0 * 12000.0 * 12000.0 * 12000.0 /
                    Profile->TimeSec / 1e9;
  EXPECT_NEAR(metricValue(Metrics, "DP GFLOP/s") / Expected, 1.0, 0.15);
}

TEST(DerivedMetrics, RendersAsTable) {
  PerformanceGroup Group = *findGroup(haswellPerformanceGroups(), "MEM");
  std::string Text = renderDerivedMetrics(
      computeDerivedMetrics(Group, {1e9, 1e9}, 1.0));
  EXPECT_NE(Text.find("Memory bandwidth"), std::string::npos);
}

TEST(DerivedMetricsDeath, MismatchedCountsAssert) {
  PerformanceGroup Group = *findGroup(haswellPerformanceGroups(), "MEM");
  EXPECT_DEATH((void)computeDerivedMetrics(Group, {1.0}, 1.0),
               "do not match");
}
