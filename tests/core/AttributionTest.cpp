//===- tests/core/AttributionTest.cpp - Energy attribution tests ----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Attribution.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::core;
using namespace slope::ml;

namespace {
/// Fits y = 2a + 5b exactly (zero intercept, non-negative).
LinearRegression makeFitted() {
  Rng R(1);
  Dataset D({"a", "b"});
  for (int I = 0; I < 40; ++I) {
    double A = R.uniform(0, 10), B = R.uniform(0, 10);
    D.addRow({A, B}, 2 * A + 5 * B);
  }
  LinearRegression M;
  [[maybe_unused]] auto Fit = M.fit(D);
  assert(Fit);
  return M;
}
} // namespace

TEST(Attribution, ContributionsSumToPrediction) {
  LinearRegression M = makeFitted();
  std::vector<double> Counts = {3, 4};
  std::vector<EnergyContribution> Parts =
      attributeEnergy(M, {"a", "b"}, Counts);
  double Sum = 0, ShareSum = 0;
  for (const EnergyContribution &Part : Parts) {
    Sum += Part.Joules;
    ShareSum += Part.Share;
  }
  EXPECT_NEAR(Sum, M.predict(Counts), 1e-9);
  EXPECT_NEAR(ShareSum, 1.0, 1e-9);
}

TEST(Attribution, SortedByDescendingShare) {
  LinearRegression M = makeFitted();
  // b's term (5*4=20) dominates a's (2*3=6).
  std::vector<EnergyContribution> Parts =
      attributeEnergy(M, {"a", "b"}, {3, 4});
  ASSERT_EQ(Parts.size(), 2u);
  EXPECT_EQ(Parts[0].Pmc, "b");
  EXPECT_GT(Parts[0].Share, Parts[1].Share);
}

TEST(Attribution, KnownValues) {
  LinearRegression M = makeFitted();
  std::vector<EnergyContribution> Parts =
      attributeEnergy(M, {"a", "b"}, {10, 0});
  // All predicted energy comes from a.
  EXPECT_EQ(Parts[0].Pmc, "a");
  EXPECT_NEAR(Parts[0].Joules, 20.0, 1e-6);
  EXPECT_NEAR(Parts[0].Share, 1.0, 1e-9);
  EXPECT_NEAR(Parts[1].Joules, 0.0, 1e-9);
}

TEST(Attribution, InterceptReportedWhenPresent) {
  Rng R(2);
  Dataset D({"x"});
  for (int I = 0; I < 30; ++I) {
    double X = R.uniform(0, 5);
    D.addRow({X}, 3 * X + 7);
  }
  LinearRegression M(LinearRegressionOptions::ols());
  ASSERT_TRUE(bool(M.fit(D)));
  std::vector<EnergyContribution> Parts = attributeEnergy(M, {"x"}, {2});
  ASSERT_EQ(Parts.size(), 2u);
  bool FoundIntercept = false;
  for (const EnergyContribution &Part : Parts)
    if (Part.Pmc == "(intercept)") {
      FoundIntercept = true;
      EXPECT_NEAR(Part.Joules, 7.0, 1e-6);
    }
  EXPECT_TRUE(FoundIntercept);
}

TEST(Attribution, RendersAsTable) {
  LinearRegression M = makeFitted();
  std::string Text =
      renderAttribution(attributeEnergy(M, {"a", "b"}, {3, 4}));
  EXPECT_NE(Text.find("PMC term"), std::string::npos);
  EXPECT_NE(Text.find("b"), std::string::npos);
}
