//===- tests/core/OnlineEstimatorTest.cpp - Online estimator tests --------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/OnlineEstimator.h"

#include "pmc/PlatformEvents.h"
#include "stats/Descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

namespace {
struct Rig {
  Machine M;
  power::HclWattsUp Meter;

  explicit Rig(uint64_t Seed)
      : M(Platform::intelSkylakeServer(), Seed),
        Meter(M, std::make_unique<power::WattsUpProMeter>()) {}
};

std::vector<CompoundApplication> dgemmSweep() {
  std::vector<CompoundApplication> Apps;
  for (uint64_t N = 7000; N <= 20000; N += 500)
    Apps.emplace_back(Application(KernelKind::MklDgemm, N));
  return Apps;
}

std::vector<std::string> pa4() {
  std::vector<std::string> Pa = pmc::skylakePaNames();
  return {Pa[0], Pa[1], Pa[3], Pa[7]}; // The paper's PA4 picks.
}
} // namespace

TEST(OnlineEstimator, TrainsOnSingleRunSubset) {
  Rig R(1);
  auto Estimator =
      OnlineEstimator::train(R.M, R.Meter, pa4(), dgemmSweep());
  ASSERT_TRUE(bool(Estimator));
  EXPECT_EQ(Estimator->pmcNames().size(), 4u);
}

TEST(OnlineEstimator, RejectsSubsetsNeedingMultipleRuns) {
  Rig R(2);
  // All nine PA events need ceil(9/4) = 3 runs.
  auto Estimator = OnlineEstimator::train(R.M, R.Meter,
                                          pmc::skylakePaNames(),
                                          dgemmSweep());
  ASSERT_FALSE(bool(Estimator));
  EXPECT_NE(Estimator.error().message().find("requires 1"),
            std::string::npos);
}

TEST(OnlineEstimator, RejectsUnknownEvents) {
  Rig R(3);
  auto Estimator = OnlineEstimator::train(
      R.M, R.Meter, {"NOT_A_COUNTER"}, dgemmSweep());
  ASSERT_FALSE(bool(Estimator));
}

TEST(OnlineEstimator, RejectsEmptySubset) {
  Rig R(4);
  auto Estimator = OnlineEstimator::train(R.M, R.Meter, {}, dgemmSweep());
  ASSERT_FALSE(bool(Estimator));
}

TEST(OnlineEstimator, EstimatesTrackMeteredTruth) {
  Rig R(5);
  auto Estimator =
      OnlineEstimator::train(R.M, R.Meter, pa4(), dgemmSweep());
  ASSERT_TRUE(bool(Estimator));
  // Held-out sizes between the training grid points.
  std::vector<double> Errors;
  for (uint64_t N : {7250ull, 12250ull, 18250ull}) {
    Execution Exec = R.M.run(Application(KernelKind::MklDgemm, N));
    double Estimate = Estimator->estimateExecution(Exec);
    double Truth = Exec.TrueDynamicEnergyJ;
    Errors.push_back(std::fabs(Estimate - Truth) / Truth * 100);
  }
  EXPECT_LT(stats::mean(Errors), 10.0);
}

TEST(OnlineEstimator, EstimateRunPerformsAFreshExecution) {
  Rig R(6);
  auto Estimator =
      OnlineEstimator::train(R.M, R.Meter, pa4(), dgemmSweep());
  ASSERT_TRUE(bool(Estimator));
  CompoundApplication App(Application(KernelKind::MklDgemm, 10000));
  double A = Estimator->estimateRun(App);
  double B = Estimator->estimateRun(App);
  EXPECT_GT(A, 0.0);
  EXPECT_NE(A, B); // Fresh runs differ by run-to-run variation.
  EXPECT_NEAR(A / B, 1.0, 0.2);
}

TEST(OnlineEstimator, SupportsAllThreeFamilies) {
  for (ModelFamily Family :
       {ModelFamily::LR, ModelFamily::RF, ModelFamily::NN}) {
    Rig R(7 + static_cast<uint64_t>(Family));
    auto Estimator = OnlineEstimator::train(R.M, R.Meter, pa4(),
                                            dgemmSweep(), Family, 1);
    ASSERT_TRUE(bool(Estimator)) << modelFamilyName(Family);
    EXPECT_GT(Estimator->estimateRun(CompoundApplication(
                  Application(KernelKind::MklDgemm, 9500))),
              0.0);
  }
}

TEST(OnlineEstimator, EstimateRunIsDeterministicForEqualSeeds) {
  // Two identically seeded rigs replay the same training campaign and
  // the same fresh run, so the estimate must match bit for bit.
  CompoundApplication App(Application(KernelKind::MklDgemm, 11000));
  double Estimates[2];
  for (double &Estimate : Estimates) {
    Rig R(11);
    auto Estimator =
        OnlineEstimator::train(R.M, R.Meter, pa4(), dgemmSweep());
    ASSERT_TRUE(bool(Estimator));
    Estimate = Estimator->estimateRun(App);
  }
  EXPECT_EQ(Estimates[0], Estimates[1]);
}

TEST(OnlineEstimator, BatchEstimatesMatchPerElementForAllFamilies) {
  // estimateExecutions routes through Model::predictBatch; its contract
  // is bit-identity with the per-element path for every family override
  // (LR/NN columnar kernels, RF per-tree batch walk, kNN flat rows).
  for (ModelFamily Family : {ModelFamily::LR, ModelFamily::RF,
                             ModelFamily::NN, ModelFamily::Knn}) {
    Rig R(20 + static_cast<uint64_t>(Family));
    auto Estimator = OnlineEstimator::train(R.M, R.Meter, pa4(),
                                            dgemmSweep(), Family, 1);
    ASSERT_TRUE(bool(Estimator)) << modelFamilyName(Family);
    std::vector<Execution> Execs;
    for (uint64_t N : {7500ull, 9000ull, 13000ull, 16500ull, 19000ull})
      Execs.push_back(R.M.run(Application(KernelKind::MklDgemm, N)));
    std::vector<double> Batch = Estimator->estimateExecutions(Execs);
    ASSERT_EQ(Batch.size(), Execs.size());
    for (size_t I = 0; I < Execs.size(); ++I)
      EXPECT_EQ(Batch[I], Estimator->estimateExecution(Execs[I]))
          << modelFamilyName(Family) << " execution " << I;
  }
}
