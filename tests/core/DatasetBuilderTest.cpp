//===- tests/core/DatasetBuilderTest.cpp - Dataset builder tests ----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/DatasetBuilder.h"

#include "pmc/PlatformEvents.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

namespace {
struct Rig {
  Machine M;
  power::HclWattsUp Meter;
  DatasetBuilder Builder;

  explicit Rig(uint64_t Seed)
      : M(Platform::intelSkylakeServer(), Seed),
        Meter(M, std::make_unique<power::WattsUpProMeter>()),
        Builder(M, Meter) {}
};

std::vector<CompoundApplication> someApps() {
  return {CompoundApplication(Application(KernelKind::MklDgemm, 8000)),
          CompoundApplication(Application(KernelKind::MklDgemm, 12000)),
          CompoundApplication(Application(KernelKind::MklFft, 25000))};
}
} // namespace

TEST(DatasetBuilder, OneRowPerApplication) {
  Rig R(1);
  auto Data = R.Builder.buildByName(someApps(), pmc::skylakePaNames());
  ASSERT_TRUE(bool(Data));
  EXPECT_EQ(Data->numRows(), 3u);
  EXPECT_EQ(Data->numFeatures(), 9u);
}

TEST(DatasetBuilder, FeatureNamesMatchEvents) {
  Rig R(2);
  auto Data = R.Builder.buildByName(someApps(), pmc::skylakePaNames());
  ASSERT_TRUE(bool(Data));
  EXPECT_EQ(Data->featureNames(), pmc::skylakePaNames());
}

TEST(DatasetBuilder, TargetsArePositiveEnergies) {
  Rig R(3);
  auto Data = R.Builder.buildByName(someApps(), pmc::skylakePaNames());
  ASSERT_TRUE(bool(Data));
  for (size_t I = 0; I < Data->numRows(); ++I)
    EXPECT_GT(Data->target(I), 0.0);
}

TEST(DatasetBuilder, BiggerProblemMoreEnergy) {
  Rig R(4);
  auto Data = R.Builder.buildByName(someApps(), pmc::skylakePaNames());
  ASSERT_TRUE(bool(Data));
  EXPECT_LT(Data->target(0), Data->target(1)); // 8000^3 < 12000^3.
}

TEST(DatasetBuilder, UnknownEventNameFails) {
  Rig R(5);
  auto Data = R.Builder.buildByName(someApps(), {"NOT_A_COUNTER"});
  ASSERT_FALSE(bool(Data));
  EXPECT_NE(Data.error().message().find("NOT_A_COUNTER"),
            std::string::npos);
}

TEST(DatasetBuilder, TotalEnergyOptionRaisesTargets) {
  // E_T = E_D + P_S * T: the total-energy target must exceed the
  // dynamic one by roughly the static power times runtime.
  Machine M(Platform::intelSkylakeServer(), 77);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
  DatasetBuildOptions Total;
  Total.UseTotalEnergy = true;
  DatasetBuilder DynBuilder(M, Meter);
  DatasetBuilder TotalBuilder(M, Meter, Total);
  std::vector<CompoundApplication> App = {
      CompoundApplication(Application(KernelKind::MklDgemm, 12000))};
  auto Dyn = DynBuilder.buildByName(App, {"UOPS_EXECUTED_CORE"});
  auto Tot = TotalBuilder.buildByName(App, {"UOPS_EXECUTED_CORE"});
  ASSERT_TRUE(bool(Dyn));
  ASSERT_TRUE(bool(Tot));
  double T = kernelTimeSeconds(KernelKind::MklDgemm, 12000,
                               M.platform());
  double StaticJ = M.platform().IdlePowerWatts * T;
  EXPECT_NEAR(Tot->target(0) - Dyn->target(0), StaticJ, StaticJ * 0.15);
}

TEST(DatasetBuilder, CountsScaleWithWork) {
  Rig R(6);
  auto Data = R.Builder.buildByName(
      someApps(), {"FP_ARITH_INST_RETIRED_DOUBLE"});
  ASSERT_TRUE(bool(Data));
  // 2 * 8000^3 vs 2 * 12000^3.
  double Ratio = Data->row(1)[0] / Data->row(0)[0];
  EXPECT_NEAR(Ratio, std::pow(12000.0 / 8000.0, 3), Ratio * 0.05);
}

namespace {
/// Restores global pool/kernel configuration on scope exit.
struct CampaignConfigGuard {
  sim::SynthAlgorithm Saved = sim::defaultSynthAlgorithm();
  ~CampaignConfigGuard() {
    ThreadPool::setGlobalThreadCount(0);
    sim::setDefaultSynthAlgorithm(Saved);
  }
};

/// Asserts two datasets are bit-for-bit equal (columns and targets).
void expectDatasetsIdentical(const ml::Dataset &A, const ml::Dataset &B) {
  ASSERT_EQ(A.numRows(), B.numRows());
  ASSERT_EQ(A.featureNames(), B.featureNames());
  EXPECT_EQ(A.targets(), B.targets());
  for (size_t C = 0; C < A.numFeatures(); ++C)
    EXPECT_EQ(A.featureColumn(C), B.featureColumn(C))
        << "column " << A.featureNames()[C] << " differs";
}
} // namespace

TEST(DatasetBuilder, ParallelBuildMatchesSerialPerAppCampaign) {
  // The fused campaign (seeds pre-forked app-major, runs parallel, meter
  // serial, reductions parallel) must reproduce profiling each
  // application one after the other on a twin rig, bit for bit.
  CampaignConfigGuard Guard;
  DatasetBuildOptions Options;
  Options.Repetitions = 2;

  Machine SerialM(Platform::intelSkylakeServer(), 21);
  power::HclWattsUp SerialMeter(SerialM,
                                std::make_unique<power::WattsUpProMeter>());
  PmcProfiler SerialProfiler(SerialM, &SerialMeter);
  std::vector<pmc::EventId> Events;
  for (const std::string &Name : pmc::skylakePaNames())
    Events.push_back(*SerialM.registry().lookup(Name));
  ml::Dataset Reference(pmc::skylakePaNames());
  ThreadPool::setGlobalThreadCount(1);
  for (const CompoundApplication &App : someApps()) {
    auto Profile = SerialProfiler.collect(App, Events, Options.Repetitions);
    ASSERT_TRUE(bool(Profile));
    Reference.addRow(Profile->Counts, Profile->DynamicEnergyJ);
  }

  for (unsigned Threads : {1u, 2u, 8u}) {
    ThreadPool::setGlobalThreadCount(Threads);
    Machine M(Platform::intelSkylakeServer(), 21);
    power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
    DatasetBuilder Builder(M, Meter, Options);
    auto Data = Builder.buildByName(someApps(), pmc::skylakePaNames());
    ASSERT_TRUE(bool(Data));
    expectDatasetsIdentical(*Data, Reference);
  }
}

TEST(DatasetBuilder, SynthesisKernelsProduceIdenticalDatasets) {
  CampaignConfigGuard Guard;
  std::vector<ml::Dataset> PerAlgo;
  for (sim::SynthAlgorithm Algo :
       {sim::SynthAlgorithm::Naive, sim::SynthAlgorithm::Batched}) {
    sim::setDefaultSynthAlgorithm(Algo);
    Rig R(22);
    auto Data = R.Builder.buildByName(someApps(), pmc::skylakePaNames());
    ASSERT_TRUE(bool(Data));
    PerAlgo.push_back(*Data);
  }
  expectDatasetsIdentical(PerAlgo[0], PerAlgo[1]);
}
