//===- tests/core/PmcProfilerTest.cpp - Profiler tests --------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/PmcProfiler.h"

#include "pmc/PlatformEvents.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;
using namespace slope::sim;

namespace {
CompoundApplication dgemm() {
  return CompoundApplication(Application(KernelKind::MklDgemm, 10000));
}
} // namespace

TEST(PmcProfiler, CollectsRequestedEvents) {
  Machine M(Platform::intelHaswellServer(), 1);
  PmcProfiler Profiler(M);
  std::vector<EventId> Ids;
  for (const std::string &Name : haswellClassAPmcNames())
    Ids.push_back(*M.registry().lookup(Name));
  auto Result = Profiler.collect(dgemm(), Ids);
  ASSERT_TRUE(bool(Result));
  ASSERT_EQ(Result->Counts.size(), Ids.size());
  for (double C : Result->Counts)
    EXPECT_GT(C, 0.0);
}

TEST(PmcProfiler, SixGeneralEventsNeedTwoRuns) {
  Machine M(Platform::intelHaswellServer(), 2);
  PmcProfiler Profiler(M);
  std::vector<EventId> Ids;
  for (const std::string &Name : haswellClassAPmcNames())
    Ids.push_back(*M.registry().lookup(Name));
  auto Result = Profiler.collect(dgemm(), Ids);
  ASSERT_TRUE(bool(Result));
  EXPECT_EQ(Result->RunsUsed, 2u);
}

TEST(PmcProfiler, RepetitionsMultiplyRuns) {
  Machine M(Platform::intelHaswellServer(), 3);
  PmcProfiler Profiler(M);
  std::vector<EventId> Ids = {*M.registry().lookup("L2_RQSTS_MISS")};
  auto Result = Profiler.collect(dgemm(), Ids, /*Repetitions=*/3);
  ASSERT_TRUE(bool(Result));
  EXPECT_EQ(Result->RunsUsed, 3u);
}

TEST(PmcProfiler, EnergyAttachedWhenMeterPresent) {
  Machine M(Platform::intelHaswellServer(), 4);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
  PmcProfiler Profiler(M, &Meter);
  auto Result =
      Profiler.collect(dgemm(), {*M.registry().lookup("UOPS_ISSUED_ANY")});
  ASSERT_TRUE(bool(Result));
  EXPECT_GT(Result->DynamicEnergyJ, 0.0);
  EXPECT_GT(Result->TimeSec, 0.0);
}

TEST(PmcProfiler, NoMeterMeansZeroEnergy) {
  Machine M(Platform::intelHaswellServer(), 5);
  PmcProfiler Profiler(M);
  auto Result =
      Profiler.collect(dgemm(), {*M.registry().lookup("UOPS_ISSUED_ANY")});
  ASSERT_TRUE(bool(Result));
  EXPECT_DOUBLE_EQ(Result->DynamicEnergyJ, 0.0);
}

TEST(PmcProfiler, CollectionCostMatchesPaperForFullRegistry) {
  Machine M(Platform::intelHaswellServer(), 6);
  PmcProfiler Profiler(M);
  std::vector<EventId> Significant;
  for (EventId Id : M.registry().allEvents())
    if (!M.registry().event(Id).Model.Coeffs.empty())
      Significant.push_back(Id);
  auto Cost = Profiler.collectionCost(Significant);
  ASSERT_TRUE(bool(Cost));
  EXPECT_EQ(*Cost, 53u);
}

TEST(PmcProfiler, DuplicateRequestIsRejected) {
  Machine M(Platform::intelHaswellServer(), 7);
  PmcProfiler Profiler(M);
  EventId Id = *M.registry().lookup("L2_RQSTS_MISS");
  auto Result = Profiler.collect(dgemm(), {Id, Id});
  EXPECT_FALSE(bool(Result));
}

TEST(PmcProfiler, CountsOrderedLikeRequest) {
  Machine M(Platform::intelHaswellServer(), 8);
  PmcProfiler Profiler(M);
  EventId Uops = *M.registry().lookup("UOPS_ISSUED_ANY");
  EventId Divs = *M.registry().lookup("ARITH_DIVIDER_COUNT");
  auto Forward = Profiler.collect(dgemm(), {Uops, Divs});
  ASSERT_TRUE(bool(Forward));
  // Uop volume dwarfs divider counts for DGEMM.
  EXPECT_GT(Forward->Counts[0], Forward->Counts[1]);
}
