//===- tests/core/PmcProfilerTest.cpp - Profiler tests --------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/PmcProfiler.h"

#include "../ml/AllocCounting.h"
#include "pmc/PlatformEvents.h"

#include <gtest/gtest.h>

#include <map>

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;
using namespace slope::sim;

namespace {
CompoundApplication dgemm() {
  return CompoundApplication(Application(KernelKind::MklDgemm, 10000));
}

/// Restores the process-wide synthesis kernel on scope exit.
struct SynthAlgoGuard {
  SynthAlgorithm Saved = defaultSynthAlgorithm();
  ~SynthAlgoGuard() { setDefaultSynthAlgorithm(Saved); }
};

/// The seed-era collection algorithm, kept verbatim as the reference the
/// batched campaign must reproduce bit for bit: one serial machine run
/// per (collection run, repetition), the meter read as each run finishes,
/// per-event counts accumulated through ordered map nodes.
ProfileResult referenceCollect(Machine &M, power::HclWattsUp *Meter,
                               const CompoundApplication &App,
                               const std::vector<EventId> &Events,
                               unsigned Repetitions) {
  auto Plan = planCollection(M.registry(), Events);
  EXPECT_TRUE(bool(Plan));
  std::map<EventId, double> MeanByEvent;
  ProfileResult Result;
  double EnergySum = 0, TotalSum = 0, TimeSum = 0;
  for (const CollectionRun &Run : Plan->Runs) {
    std::map<EventId, double> GroupSum;
    for (unsigned Rep = 0; Rep < Repetitions; ++Rep) {
      Execution Exec = M.run(App);
      ++Result.RunsUsed;
      TimeSum += Exec.totalTimeSec();
      if (Meter) {
        power::EnergyReading Reading = Meter->readingFor(Exec);
        EnergySum += Reading.DynamicEnergyJ;
        TotalSum += Reading.TotalEnergyJ;
      }
      for (EventId Id : Run.Events)
        GroupSum[Id] += M.readCounter(Id, Exec);
    }
    for (EventId Id : Run.Events)
      MeanByEvent[Id] = GroupSum[Id] / Repetitions;
  }
  for (EventId Id : Events)
    Result.Counts.push_back(MeanByEvent[Id]);
  if (Result.RunsUsed > 0) {
    Result.TimeSec = TimeSum / static_cast<double>(Result.RunsUsed);
    Result.DynamicEnergyJ =
        Meter ? EnergySum / static_cast<double>(Result.RunsUsed) : 0.0;
    Result.TotalEnergyJ =
        Meter ? TotalSum / static_cast<double>(Result.RunsUsed) : 0.0;
  }
  return Result;
}
} // namespace

TEST(PmcProfiler, CollectsRequestedEvents) {
  Machine M(Platform::intelHaswellServer(), 1);
  PmcProfiler Profiler(M);
  std::vector<EventId> Ids;
  for (const std::string &Name : haswellClassAPmcNames())
    Ids.push_back(*M.registry().lookup(Name));
  auto Result = Profiler.collect(dgemm(), Ids);
  ASSERT_TRUE(bool(Result));
  ASSERT_EQ(Result->Counts.size(), Ids.size());
  for (double C : Result->Counts)
    EXPECT_GT(C, 0.0);
}

TEST(PmcProfiler, SixGeneralEventsNeedTwoRuns) {
  Machine M(Platform::intelHaswellServer(), 2);
  PmcProfiler Profiler(M);
  std::vector<EventId> Ids;
  for (const std::string &Name : haswellClassAPmcNames())
    Ids.push_back(*M.registry().lookup(Name));
  auto Result = Profiler.collect(dgemm(), Ids);
  ASSERT_TRUE(bool(Result));
  EXPECT_EQ(Result->RunsUsed, 2u);
}

TEST(PmcProfiler, RepetitionsMultiplyRuns) {
  Machine M(Platform::intelHaswellServer(), 3);
  PmcProfiler Profiler(M);
  std::vector<EventId> Ids = {*M.registry().lookup("L2_RQSTS_MISS")};
  auto Result = Profiler.collect(dgemm(), Ids, /*Repetitions=*/3);
  ASSERT_TRUE(bool(Result));
  EXPECT_EQ(Result->RunsUsed, 3u);
}

TEST(PmcProfiler, EnergyAttachedWhenMeterPresent) {
  Machine M(Platform::intelHaswellServer(), 4);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
  PmcProfiler Profiler(M, &Meter);
  auto Result =
      Profiler.collect(dgemm(), {*M.registry().lookup("UOPS_ISSUED_ANY")});
  ASSERT_TRUE(bool(Result));
  EXPECT_GT(Result->DynamicEnergyJ, 0.0);
  EXPECT_GT(Result->TimeSec, 0.0);
}

TEST(PmcProfiler, NoMeterMeansZeroEnergy) {
  Machine M(Platform::intelHaswellServer(), 5);
  PmcProfiler Profiler(M);
  auto Result =
      Profiler.collect(dgemm(), {*M.registry().lookup("UOPS_ISSUED_ANY")});
  ASSERT_TRUE(bool(Result));
  EXPECT_DOUBLE_EQ(Result->DynamicEnergyJ, 0.0);
}

TEST(PmcProfiler, CollectionCostMatchesPaperForFullRegistry) {
  Machine M(Platform::intelHaswellServer(), 6);
  PmcProfiler Profiler(M);
  std::vector<EventId> Significant;
  for (EventId Id : M.registry().allEvents())
    if (!M.registry().event(Id).Model.Coeffs.empty())
      Significant.push_back(Id);
  auto Cost = Profiler.collectionCost(Significant);
  ASSERT_TRUE(bool(Cost));
  EXPECT_EQ(*Cost, 53u);
}

TEST(PmcProfiler, DuplicateRequestIsRejected) {
  Machine M(Platform::intelHaswellServer(), 7);
  PmcProfiler Profiler(M);
  EventId Id = *M.registry().lookup("L2_RQSTS_MISS");
  auto Result = Profiler.collect(dgemm(), {Id, Id});
  EXPECT_FALSE(bool(Result));
}

TEST(PmcProfiler, CountsOrderedLikeRequest) {
  Machine M(Platform::intelHaswellServer(), 8);
  PmcProfiler Profiler(M);
  EventId Uops = *M.registry().lookup("UOPS_ISSUED_ANY");
  EventId Divs = *M.registry().lookup("ARITH_DIVIDER_COUNT");
  auto Forward = Profiler.collect(dgemm(), {Uops, Divs});
  ASSERT_TRUE(bool(Forward));
  // Uop volume dwarfs divider counts for DGEMM.
  EXPECT_GT(Forward->Counts[0], Forward->Counts[1]);
}

TEST(PmcProfiler, BatchedCampaignMatchesSeedEraSerialScan) {
  // Twin rigs with identical seeds: one profiled through the batched
  // campaign (under both synthesis kernels), one through the seed-era
  // serial algorithm replicated above. Every count, energy, and time
  // must agree bit for bit.
  SynthAlgoGuard Guard;
  std::vector<EventId> Ids;
  {
    Machine Probe(Platform::intelHaswellServer(), 9);
    for (const std::string &Name : haswellClassAPmcNames())
      Ids.push_back(*Probe.registry().lookup(Name));
  }
  Machine RefM(Platform::intelHaswellServer(), 9);
  power::HclWattsUp RefMeter(RefM,
                             std::make_unique<power::WattsUpProMeter>());
  ProfileResult Ref =
      referenceCollect(RefM, &RefMeter, dgemm(), Ids, /*Repetitions=*/3);

  for (SynthAlgorithm Algo :
       {SynthAlgorithm::Naive, SynthAlgorithm::Batched}) {
    setDefaultSynthAlgorithm(Algo);
    Machine M(Platform::intelHaswellServer(), 9);
    power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
    PmcProfiler Profiler(M, &Meter);
    auto Result = Profiler.collect(dgemm(), Ids, /*Repetitions=*/3);
    ASSERT_TRUE(bool(Result));
    EXPECT_EQ(Result->RunsUsed, Ref.RunsUsed);
    EXPECT_EQ(Result->Counts, Ref.Counts);
    EXPECT_EQ(Result->DynamicEnergyJ, Ref.DynamicEnergyJ);
    EXPECT_EQ(Result->TotalEnergyJ, Ref.TotalEnergyJ);
    EXPECT_EQ(Result->TimeSec, Ref.TimeSec);
  }
}

TEST(PmcProfiler, WarmRepLoopDoesNotAllocate) {
  Machine M(Platform::intelHaswellServer(), 10);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
  PmcProfiler Profiler(M, &Meter);
  std::vector<EventId> Ids;
  for (const std::string &Name : haswellClassAPmcNames())
    Ids.push_back(*M.registry().lookup(Name));

  // The probe fires after all reduction scratch is sized and before the
  // per-run, per-repetition read/accumulate loop — which must then touch
  // the heap exactly zero times.
  detail::ProfilerRepLoopProbe = [](bool Entering) {
    if (Entering)
      test::allocCountingArm();
    else
      test::allocCountingDisarm();
  };
  auto Result = Profiler.collect(dgemm(), Ids, /*Repetitions=*/4);
  detail::ProfilerRepLoopProbe = nullptr;

  ASSERT_TRUE(bool(Result));
  EXPECT_EQ(test::armedAllocationCount(), 0u)
      << "profiler rep loop allocated after scratch setup";
}
