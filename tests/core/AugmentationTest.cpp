//===- tests/core/AugmentationTest.cpp - Compound augmentation tests ------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Augmentation.h"

#include "ml/Metrics.h"
#include "ml/RandomForest.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::core;
using namespace slope::ml;

namespace {
Dataset makeBases() {
  Dataset D({"a", "b"});
  D.addRow({1, 10}, 100);
  D.addRow({2, 20}, 200);
  D.addRow({3, 30}, 300);
  return D;
}
} // namespace

TEST(Augmentation, AppendsRequestedRowCount) {
  Dataset Out = augmentWithSyntheticCompounds(makeBases(), 5, Rng(1));
  EXPECT_EQ(Out.numRows(), 8u);
  EXPECT_EQ(Out.numFeatures(), 2u);
}

TEST(Augmentation, OriginalRowsPreservedInPlace) {
  Dataset Out = augmentWithSyntheticCompounds(makeBases(), 3, Rng(2));
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_EQ(Out.row(I), makeBases().row(I));
    EXPECT_DOUBLE_EQ(Out.target(I), makeBases().target(I));
  }
}

TEST(Augmentation, SyntheticRowsAreSumsOfTwoDistinctBases) {
  Dataset Bases = makeBases();
  Dataset Out = augmentWithSyntheticCompounds(Bases, 40, Rng(3));
  for (size_t I = Bases.numRows(); I < Out.numRows(); ++I) {
    // Each synthetic row must decompose into some pair of base rows.
    bool Matched = false;
    for (size_t A = 0; A < Bases.numRows() && !Matched; ++A)
      for (size_t B = 0; B < Bases.numRows() && !Matched; ++B) {
        if (A == B)
          continue;
        bool RowMatch =
            Out.row(I)[0] == Bases.row(A)[0] + Bases.row(B)[0] &&
            Out.row(I)[1] == Bases.row(A)[1] + Bases.row(B)[1];
        bool TargetMatch =
            Out.target(I) == Bases.target(A) + Bases.target(B);
        Matched = RowMatch && TargetMatch;
      }
    EXPECT_TRUE(Matched) << "row " << I;
  }
}

TEST(Augmentation, DeterministicPerSeed) {
  Dataset A = augmentWithSyntheticCompounds(makeBases(), 10, Rng(7));
  Dataset B = augmentWithSyntheticCompounds(makeBases(), 10, Rng(7));
  for (size_t I = 0; I < A.numRows(); ++I)
    EXPECT_DOUBLE_EQ(A.target(I), B.target(I));
}

TEST(Augmentation, ExtendsTheForestHull) {
  // The mechanism the future-work bench relies on: after augmentation a
  // forest can reach twice the base-target range.
  Rng R(11);
  Dataset Bases({"x"});
  for (int I = 1; I <= 60; ++I)
    Bases.addRow({static_cast<double>(I)}, 2.0 * I);
  Dataset Augmented = augmentWithSyntheticCompounds(Bases, 120, R);

  RandomForest Plain, WithAug;
  ASSERT_TRUE(bool(Plain.fit(Bases)));
  ASSERT_TRUE(bool(WithAug.fit(Augmented)));
  // A compound-like point beyond the base hull: x = 100, truth 200.
  double PlainErr = std::fabs(Plain.predict({100}) - 200);
  double AugErr = std::fabs(WithAug.predict({100}) - 200);
  EXPECT_LT(AugErr, PlainErr);
}
