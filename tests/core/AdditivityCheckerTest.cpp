//===- tests/core/AdditivityCheckerTest.cpp - Additivity test tests -------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/AdditivityChecker.h"

#include "pmc/PlatformEvents.h"
#include "sim/TestSuite.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

namespace {
/// A small but diverse compound suite on the Haswell machine.
std::vector<CompoundApplication> smallSuite(Machine &M, size_t Pairs = 8) {
  Rng R(77);
  std::vector<Application> Bases =
      diverseBaseSuite(M.platform(), 16, R.fork("b"));
  return makeCompoundSuite(Bases, Pairs, R.fork("p"));
}
} // namespace

TEST(AdditivityChecker, AdditiveEventPassesOnOptimizedKernels) {
  // On DGEMM-only compounds, a clean uop counter is additive within 5%.
  Machine M(Platform::intelSkylakeServer(), 1);
  AdditivityChecker Checker(M);
  std::vector<CompoundApplication> Compounds = {
      {Application(KernelKind::MklDgemm, 8000),
       Application(KernelKind::MklDgemm, 11000)},
      {Application(KernelKind::MklDgemm, 9000),
       Application(KernelKind::MklFft, 25000)},
  };
  AdditivityResult R =
      Checker.check(*M.registry().lookup("UOPS_EXECUTED_CORE"), Compounds);
  EXPECT_TRUE(R.Significant);
  EXPECT_TRUE(R.Deterministic);
  EXPECT_LE(R.MaxErrorPct, 5.0);
  EXPECT_TRUE(R.Additive);
}

TEST(AdditivityChecker, DividerFailsStageTwoOnDiverseSuite) {
  Machine M(Platform::intelHaswellServer(), 2);
  AdditivityChecker Checker(M);
  AdditivityResult R = Checker.check(
      *M.registry().lookup("ARITH_DIVIDER_COUNT"), smallSuite(M));
  EXPECT_GT(R.MaxErrorPct, 5.0);
  EXPECT_FALSE(R.Additive);
}

TEST(AdditivityChecker, InsignificantEventFailsStageOne) {
  Machine M(Platform::intelHaswellServer(), 3);
  AdditivityChecker Checker(M);
  AdditivityResult R = Checker.check(
      *M.registry().lookup("RTM_RETIRED_ABORTED"), smallSuite(M, 4));
  EXPECT_FALSE(R.Significant);
  EXPECT_FALSE(R.Additive);
}

TEST(AdditivityChecker, ErrorPerCompoundIsRecorded) {
  Machine M(Platform::intelHaswellServer(), 4);
  AdditivityChecker Checker(M);
  std::vector<CompoundApplication> Compounds = smallSuite(M, 6);
  AdditivityResult R = Checker.check(
      *M.registry().lookup("L2_RQSTS_MISS"), Compounds);
  ASSERT_EQ(R.Errors.size(), Compounds.size());
  double Max = 0;
  for (const CompoundError &E : R.Errors) {
    EXPECT_GE(E.ErrorPct, 0.0);
    Max = std::max(Max, E.ErrorPct);
  }
  EXPECT_DOUBLE_EQ(Max, R.MaxErrorPct);
}

TEST(AdditivityChecker, ChecksAreIdempotentViaCache) {
  Machine M(Platform::intelHaswellServer(), 5);
  AdditivityChecker Checker(M);
  std::vector<CompoundApplication> Compounds = smallSuite(M, 4);
  pmc::EventId Id = *M.registry().lookup("IDQ_MS_UOPS");
  AdditivityResult A = Checker.check(Id, Compounds);
  AdditivityResult B = Checker.check(Id, Compounds);
  EXPECT_DOUBLE_EQ(A.MaxErrorPct, B.MaxErrorPct);
}

TEST(AdditivityChecker, CheckAllPreservesOrder) {
  Machine M(Platform::intelHaswellServer(), 6);
  AdditivityChecker Checker(M);
  std::vector<pmc::EventId> Ids;
  for (const std::string &Name : pmc::haswellClassAPmcNames())
    Ids.push_back(*M.registry().lookup(Name));
  std::vector<AdditivityResult> Results =
      Checker.checkAll(Ids, smallSuite(M, 5));
  ASSERT_EQ(Results.size(), Ids.size());
  for (size_t I = 0; I < Ids.size(); ++I)
    EXPECT_EQ(Results[I].Id, Ids[I]);
}

TEST(AdditivityChecker, ToleranceControlsTheVerdict) {
  Machine M(Platform::intelHaswellServer(), 7);
  std::vector<CompoundApplication> Compounds = smallSuite(M, 6);
  pmc::EventId Id = *M.registry().lookup("UOPS_EXECUTED_PORT_PORT_6");

  AdditivityTestConfig Strict;
  Strict.TolerancePct = 0.5;
  AdditivityChecker StrictChecker(M, Strict);
  EXPECT_FALSE(StrictChecker.check(Id, Compounds).Additive);

  AdditivityTestConfig Loose;
  Loose.TolerancePct = 95.0;
  AdditivityChecker LooseChecker(M, Loose);
  EXPECT_TRUE(LooseChecker.check(Id, Compounds).Additive);
}

TEST(AdditivityChecker, Eq1MatchesManualComputation) {
  // Verify Eq. 1 against a hand-computed mean over the cached runs.
  Machine M(Platform::intelSkylakeServer(), 8);
  AdditivityTestConfig Config;
  Config.RunsPerMean = 1; // One run per mean keeps the check simple.
  AdditivityChecker Checker(M, Config);
  Application A(KernelKind::MklDgemm, 8000);
  Application B(KernelKind::MklDgemm, 10000);
  std::vector<CompoundApplication> Compounds = {{A, B}};
  pmc::EventId Id = *M.registry().lookup("FP_ARITH_INST_RETIRED_DOUBLE");
  AdditivityResult R = Checker.check(Id, Compounds);
  // 2*8000^3 + 2*10000^3 vs the compound count: the error must be the
  // relative gap, which for this additive event is below 2%.
  EXPECT_LT(R.MaxErrorPct, 2.0);
}

TEST(AdditivityChecker, PaperClassBContrastHoldsOnDgemmFft) {
  // PA events additive, PNA events non-additive, on the paper's
  // DGEMM/FFT datasets (Class B premise).
  Machine M(Platform::intelSkylakeServer(), 9);
  Rng R(5);
  std::vector<Application> Bases = dgemmFftAdditivityBases(10);
  std::vector<CompoundApplication> Compounds =
      makeCompoundSuite(Bases, 6, R);
  AdditivityChecker Checker(M);
  for (const std::string &Name : pmc::skylakePaNames()) {
    AdditivityResult Res =
        Checker.check(*M.registry().lookup(Name), Compounds);
    EXPECT_TRUE(Res.Additive) << Name << " err=" << Res.MaxErrorPct;
  }
  size_t NonAdditive = 0;
  for (const std::string &Name : pmc::skylakePnaNames())
    if (!Checker.check(*M.registry().lookup(Name), Compounds).Additive)
      ++NonAdditive;
  EXPECT_GE(NonAdditive, 8u); // All nine PNA events should fail.
}
