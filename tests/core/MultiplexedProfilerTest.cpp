//===- tests/core/MultiplexedProfilerTest.cpp - Multiplexing tests --------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/MultiplexedProfiler.h"

#include "pmc/PlatformEvents.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;
using namespace slope::sim;

namespace {
CompoundApplication dgemm() {
  return CompoundApplication(Application(KernelKind::MklDgemm, 12000));
}

std::vector<EventId> classAEvents(Machine &M) {
  std::vector<EventId> Ids;
  for (const std::string &Name : haswellClassAPmcNames())
    Ids.push_back(*M.registry().lookup(Name));
  return Ids;
}
} // namespace

TEST(MultiplexedProfiler, UsesOneRunRegardlessOfEventCount) {
  Machine M(Platform::intelHaswellServer(), 1);
  MultiplexedProfiler Profiler(M);
  auto Result = Profiler.collect(dgemm(), classAEvents(M));
  ASSERT_TRUE(bool(Result));
  EXPECT_EQ(Result->RunsUsed, 1u); // PmcProfiler needs 2 for these six.
  EXPECT_EQ(Result->Counts.size(), 6u);
}

TEST(MultiplexedProfiler, GroupsMatchTheDedicatedRunPlan) {
  Machine M(Platform::intelHaswellServer(), 2);
  MultiplexedProfiler Profiler(M);
  auto Groups = Profiler.numGroups(classAEvents(M));
  ASSERT_TRUE(bool(Groups));
  EXPECT_EQ(*Groups, 2u);
}

TEST(MultiplexedProfiler, SingleGroupIsExact) {
  // Up to 4 general events share one slice group: no extrapolation, so
  // the multiplexed count equals the dedicated-run count for the same
  // machine seed.
  Machine A(Platform::intelHaswellServer(), 3);
  Machine B(Platform::intelHaswellServer(), 3);
  std::vector<EventId> All = classAEvents(A);
  std::vector<EventId> Four(All.begin(), All.begin() + 4);
  MultiplexedProfiler Mux(A);
  PmcProfiler Dedicated(B);
  auto MuxResult = Mux.collect(dgemm(), Four);
  auto DedResult = Dedicated.collect(dgemm(), Four);
  ASSERT_TRUE(bool(MuxResult));
  ASSERT_TRUE(bool(DedResult));
  for (size_t I = 0; I < 4; ++I)
    EXPECT_NEAR(MuxResult->Counts[I] / DedResult->Counts[I], 1.0, 1e-9);
}

TEST(MultiplexedProfiler, ExtrapolationAddsScalingError) {
  // With 2+ groups, multiplexed counts deviate from the same run's true
  // counts by an error that a dedicated collection does not have.
  Machine M(Platform::intelHaswellServer(), 4);
  MultiplexOptions Options;
  Options.ScalingNoiseBase = 0.2; // Exaggerate for a clear signal.
  MultiplexedProfiler Profiler(M, nullptr, Options);
  std::vector<EventId> Six = classAEvents(M);
  auto Result = Profiler.collect(dgemm(), Six, /*Repetitions=*/1);
  ASSERT_TRUE(bool(Result));
  // Compare against a clean read of a fresh machine with the same seed:
  Machine Clean(Platform::intelHaswellServer(), 4);
  Execution Exec = Clean.run(dgemm());
  double WorstRel = 0;
  for (size_t I = 0; I < Six.size(); ++I) {
    double True = Clean.readCounter(Six[I], Exec);
    WorstRel = std::max(WorstRel,
                        std::fabs(Result->Counts[I] - True) / True);
  }
  EXPECT_GT(WorstRel, 0.02);
}

TEST(MultiplexedProfiler, RepetitionsAverageTheError) {
  Machine M(Platform::intelHaswellServer(), 5);
  MultiplexOptions Options;
  Options.ScalingNoiseBase = 0.2;
  MultiplexedProfiler Profiler(M, nullptr, Options);
  std::vector<EventId> Six = classAEvents(M);
  auto Once = Profiler.collect(dgemm(), Six, 1);
  auto Many = Profiler.collect(dgemm(), Six, 12);
  ASSERT_TRUE(bool(Once));
  ASSERT_TRUE(bool(Many));
  EXPECT_EQ(Many->RunsUsed, 12u);
  // Averaged estimates must be closer to the noise-free expectation than
  // a single draw on average; check aggregate deviation shrinks.
  Machine Clean(Platform::intelHaswellServer(), 99);
  Execution Ref = Clean.run(dgemm());
  double DevOnce = 0, DevMany = 0;
  for (size_t I = 0; I < Six.size(); ++I) {
    double True = Clean.readCounter(Six[I], Ref);
    DevOnce += std::fabs(Once->Counts[I] - True) / True;
    DevMany += std::fabs(Many->Counts[I] - True) / True;
  }
  EXPECT_LT(DevMany, DevOnce + 0.05);
}

TEST(MultiplexedProfiler, CompoundsAmplifyTheError) {
  // Phase boundaries interact with slice boundaries: the same event set
  // extrapolates worse on a two-phase compound.
  Machine M(Platform::intelHaswellServer(), 6);
  MultiplexedProfiler Profiler(M);
  std::vector<EventId> Six = classAEvents(M);
  CompoundApplication Compound(Application(KernelKind::MklDgemm, 9000),
                               Application(KernelKind::QuickSort, 1u << 26));
  // Check the modeled sigma is larger by inspecting spread across many
  // repetitions of base vs compound collections.
  auto Spread = [&](const CompoundApplication &App) {
    double MinR = 1e300, MaxR = 0;
    for (int Rep = 0; Rep < 10; ++Rep) {
      auto R = Profiler.collect(App, {Six[0]});
      double C = R->Counts[0];
      MinR = std::min(MinR, C);
      MaxR = std::max(MaxR, C);
    }
    return (MaxR - MinR) / MaxR;
  };
  // Relative spread for the compound should generally exceed the base's.
  EXPECT_GT(Spread(Compound) + 0.05, Spread(dgemm()));
}

TEST(MultiplexedProfiler, DuplicateRequestRejected) {
  Machine M(Platform::intelHaswellServer(), 7);
  MultiplexedProfiler Profiler(M);
  EventId Id = *M.registry().lookup("L2_RQSTS_MISS");
  EXPECT_FALSE(bool(Profiler.collect(dgemm(), {Id, Id})));
}
