//===- tests/core/MultiplexedProfilerTest.cpp - Multiplexing tests --------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/MultiplexedProfiler.h"

#include "pmc/PlatformEvents.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;
using namespace slope::sim;

namespace {
CompoundApplication dgemm() {
  return CompoundApplication(Application(KernelKind::MklDgemm, 12000));
}

std::vector<EventId> classAEvents(Machine &M) {
  std::vector<EventId> Ids;
  for (const std::string &Name : haswellClassAPmcNames())
    Ids.push_back(*M.registry().lookup(Name));
  return Ids;
}
} // namespace

TEST(MultiplexedProfiler, UsesOneRunRegardlessOfEventCount) {
  Machine M(Platform::intelHaswellServer(), 1);
  MultiplexedProfiler Profiler(M);
  auto Result = Profiler.collect(dgemm(), classAEvents(M));
  ASSERT_TRUE(bool(Result));
  EXPECT_EQ(Result->RunsUsed, 1u); // PmcProfiler needs 2 for these six.
  EXPECT_EQ(Result->Counts.size(), 6u);
}

TEST(MultiplexedProfiler, GroupsMatchTheDedicatedRunPlan) {
  Machine M(Platform::intelHaswellServer(), 2);
  MultiplexedProfiler Profiler(M);
  auto Groups = Profiler.numGroups(classAEvents(M));
  ASSERT_TRUE(bool(Groups));
  EXPECT_EQ(*Groups, 2u);
}

TEST(MultiplexedProfiler, SingleGroupIsExact) {
  // Up to 4 general events share one slice group: no extrapolation, so
  // the multiplexed count equals the dedicated-run count for the same
  // machine seed.
  Machine A(Platform::intelHaswellServer(), 3);
  Machine B(Platform::intelHaswellServer(), 3);
  std::vector<EventId> All = classAEvents(A);
  std::vector<EventId> Four(All.begin(), All.begin() + 4);
  MultiplexedProfiler Mux(A);
  PmcProfiler Dedicated(B);
  auto MuxResult = Mux.collect(dgemm(), Four);
  auto DedResult = Dedicated.collect(dgemm(), Four);
  ASSERT_TRUE(bool(MuxResult));
  ASSERT_TRUE(bool(DedResult));
  for (size_t I = 0; I < 4; ++I)
    EXPECT_NEAR(MuxResult->Counts[I] / DedResult->Counts[I], 1.0, 1e-9);
}

TEST(MultiplexedProfiler, ExtrapolationAddsScalingError) {
  // With 2+ groups, multiplexed counts deviate from the same run's true
  // counts by an error that a dedicated collection does not have.
  Machine M(Platform::intelHaswellServer(), 4);
  MultiplexOptions Options;
  Options.ScalingNoiseBase = 0.2; // Exaggerate for a clear signal.
  MultiplexedProfiler Profiler(M, nullptr, Options);
  std::vector<EventId> Six = classAEvents(M);
  auto Result = Profiler.collect(dgemm(), Six, /*Repetitions=*/1);
  ASSERT_TRUE(bool(Result));
  // Compare against a clean read of a fresh machine with the same seed:
  Machine Clean(Platform::intelHaswellServer(), 4);
  Execution Exec = Clean.run(dgemm());
  double WorstRel = 0;
  for (size_t I = 0; I < Six.size(); ++I) {
    double True = Clean.readCounter(Six[I], Exec);
    WorstRel = std::max(WorstRel,
                        std::fabs(Result->Counts[I] - True) / True);
  }
  EXPECT_GT(WorstRel, 0.02);
}

TEST(MultiplexedProfiler, RepetitionsAverageTheError) {
  Machine M(Platform::intelHaswellServer(), 5);
  MultiplexOptions Options;
  Options.ScalingNoiseBase = 0.2;
  MultiplexedProfiler Profiler(M, nullptr, Options);
  std::vector<EventId> Six = classAEvents(M);
  auto Once = Profiler.collect(dgemm(), Six, 1);
  auto Many = Profiler.collect(dgemm(), Six, 12);
  ASSERT_TRUE(bool(Once));
  ASSERT_TRUE(bool(Many));
  EXPECT_EQ(Many->RunsUsed, 12u);
  // Averaged estimates must be closer to the noise-free expectation than
  // a single draw on average; check aggregate deviation shrinks.
  Machine Clean(Platform::intelHaswellServer(), 99);
  Execution Ref = Clean.run(dgemm());
  double DevOnce = 0, DevMany = 0;
  for (size_t I = 0; I < Six.size(); ++I) {
    double True = Clean.readCounter(Six[I], Ref);
    DevOnce += std::fabs(Once->Counts[I] - True) / True;
    DevMany += std::fabs(Many->Counts[I] - True) / True;
  }
  EXPECT_LT(DevMany, DevOnce + 0.05);
}

TEST(MultiplexedProfiler, CompoundsAmplifyTheError) {
  // Phase boundaries interact with slice boundaries: the same event set
  // extrapolates worse on a two-phase compound.
  Machine M(Platform::intelHaswellServer(), 6);
  MultiplexedProfiler Profiler(M);
  std::vector<EventId> Six = classAEvents(M);
  CompoundApplication Compound(Application(KernelKind::MklDgemm, 9000),
                               Application(KernelKind::QuickSort, 1u << 26));
  // Check the modeled sigma is larger by inspecting spread across many
  // repetitions of base vs compound collections.
  auto Spread = [&](const CompoundApplication &App) {
    double MinR = 1e300, MaxR = 0;
    for (int Rep = 0; Rep < 10; ++Rep) {
      auto R = Profiler.collect(App, {Six[0]});
      double C = R->Counts[0];
      MinR = std::min(MinR, C);
      MaxR = std::max(MaxR, C);
    }
    return (MaxR - MinR) / MaxR;
  };
  // Relative spread for the compound should generally exceed the base's.
  EXPECT_GT(Spread(Compound) + 0.05, Spread(dgemm()));
}

TEST(MultiplexedProfiler, DuplicateRequestRejected) {
  Machine M(Platform::intelHaswellServer(), 7);
  MultiplexedProfiler Profiler(M);
  EventId Id = *M.registry().lookup("L2_RQSTS_MISS");
  EXPECT_FALSE(bool(Profiler.collect(dgemm(), {Id, Id})));
}

TEST(MultiplexedProfiler, WindowedRejectsDegenerateRequests) {
  Machine M(Platform::intelHaswellServer(), 8);
  MultiplexedProfiler Profiler(M);
  std::vector<EventId> Six = classAEvents(M);
  // Six Class A events need 2 slice groups: a 1-window trace can give a
  // slice to only one of them, so the other can never be extrapolated.
  EXPECT_FALSE(bool(Profiler.collectWindowed(dgemm(), Six, 1)));
  // Duplicates are rejected exactly like the whole-run path.
  EXPECT_FALSE(bool(Profiler.collectWindowed(dgemm(), {Six[0], Six[0]}, 8)));
}

TEST(MultiplexedProfiler, WindowedSingleGroupHasFullOccupancy) {
  // With one slice group there is no rotation: every event is live in
  // every window, occupancy is exactly 1, and the reconstruction is the
  // plain sum of the per-window deltas.
  Machine M(Platform::intelHaswellServer(), 9);
  MultiplexedProfiler Profiler(M);
  std::vector<EventId> All = classAEvents(M);
  std::vector<EventId> Four(All.begin(), All.begin() + 4);
  auto Result = Profiler.collectWindowed(dgemm(), Four, 16);
  ASSERT_TRUE(bool(Result));
  EXPECT_EQ(Result->Groups, 1u);
  EXPECT_EQ(Result->Windows, 16u);
  ASSERT_EQ(Result->Occupancy.size(), Four.size());
  for (double Occ : Result->Occupancy)
    EXPECT_DOUBLE_EQ(Occ, 1.0);
}

TEST(MultiplexedProfiler, WindowedReconstructionTracksDedicatedCounts) {
  // Round-robin rotation sees each group in only ~1/G of the run, yet
  // the occupancy-extrapolated totals must land near a dedicated
  // whole-run collection of the same events (within the sampling noise
  // the error model leaves at this window count).
  Machine A(Platform::intelHaswellServer(), 10);
  Machine B(Platform::intelHaswellServer(), 10);
  std::vector<EventId> Six = classAEvents(A);
  MultiplexedProfiler Mux(A);
  auto Result = Mux.collectWindowed(dgemm(), Six, 120, /*Repetitions=*/4);
  ASSERT_TRUE(bool(Result));
  EXPECT_EQ(Result->Groups, 2u);
  EXPECT_EQ(Result->Profile.RunsUsed, 4u);

  PmcProfiler Dedicated(B);
  auto Ref = Dedicated.collect(dgemm(), Six, /*Repetitions=*/4);
  ASSERT_TRUE(bool(Ref));
  for (size_t I = 0; I < Six.size(); ++I) {
    ASSERT_GT(Ref->Counts[I], 0.0);
    EXPECT_NEAR(Result->Profile.Counts[I] / Ref->Counts[I], 1.0, 0.10)
        << "event " << I;
    // Two groups rotated round-robin: each event's group held the
    // counters for about half the windows.
    EXPECT_NEAR(Result->Occupancy[I], 0.5, 0.15) << "event " << I;
  }
}

TEST(MultiplexedProfiler, WindowedCollectionIsDeterministic) {
  Machine A(Platform::intelHaswellServer(), 11);
  Machine B(Platform::intelHaswellServer(), 11);
  std::vector<EventId> Six = classAEvents(A);
  auto R1 = MultiplexedProfiler(A).collectWindowed(dgemm(), Six, 48, 2);
  auto R2 = MultiplexedProfiler(B).collectWindowed(dgemm(), Six, 48, 2);
  ASSERT_TRUE(bool(R1));
  ASSERT_TRUE(bool(R2));
  for (size_t I = 0; I < Six.size(); ++I) {
    ASSERT_EQ(R1->Profile.Counts[I], R2->Profile.Counts[I]);
    ASSERT_EQ(R1->Occupancy[I], R2->Occupancy[I]);
  }
}
