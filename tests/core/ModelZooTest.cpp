//===- tests/core/ModelZooTest.cpp - Paper model factory tests ------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/ModelZoo.h"

#include "support/Rng.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace slope;
using namespace slope::core;

namespace {

constexpr ModelFamily AllFamilies[] = {ModelFamily::LR, ModelFamily::RF,
                                       ModelFamily::NN, ModelFamily::Knn};

/// A well-conditioned mini regression problem: positive linear targets
/// (the paper LR solves non-negative least squares) with mild noise.
ml::Dataset miniDataset(size_t Width, uint64_t Seed) {
  Rng R(Seed);
  std::vector<std::string> Names;
  for (size_t F = 0; F < Width; ++F)
    Names.push_back("pmc" + std::to_string(F));
  ml::Dataset Data(Names);
  for (int I = 0; I < 80; ++I) {
    std::vector<double> X(Width);
    double Y = 0;
    for (size_t F = 0; F < Width; ++F) {
      X[F] = R.uniform(0.5, 8.0);
      Y += static_cast<double>(F + 1) * X[F];
    }
    Data.addRow(X, Y + R.gaussian(0, 0.05));
  }
  return Data;
}

/// Restores the process-wide default algorithm when a test returns.
struct InferenceAlgorithmGuard {
  ml::InferenceAlgorithm Saved = ml::defaultInferenceAlgorithm();
  ~InferenceAlgorithmGuard() { ml::setDefaultInferenceAlgorithm(Saved); }
};

} // namespace

TEST(ModelZoo, FamilyNames) {
  EXPECT_STREQ(modelFamilyName(ModelFamily::LR), "LR");
  EXPECT_STREQ(modelFamilyName(ModelFamily::RF), "RF");
  EXPECT_STREQ(modelFamilyName(ModelFamily::NN), "NN");
  EXPECT_STREQ(modelFamilyName(ModelFamily::Knn), "kNN");
}

// Every family x algorithm combination must construct, train, and
// predict — and the quantized variant must actually be the fixed-point
// twin, never a silent fall-back to the floating-point model.
TEST(ModelZoo, RoundTripEveryFamilyAndAlgorithm) {
  ml::Dataset Train = miniDataset(4, 0x200);
  for (ModelFamily Family : AllFamilies) {
    for (ml::InferenceAlgorithm Algo :
         {ml::InferenceAlgorithm::Fp, ml::InferenceAlgorithm::Quantized}) {
      SCOPED_TRACE(std::string(modelFamilyName(Family)) + "/" +
                   (Algo == ml::InferenceAlgorithm::Quantized ? "quantized"
                                                              : "fp"));
      std::unique_ptr<ml::Model> M = fitPaperModel(Family, 1, Train, Algo);
      ASSERT_NE(M, nullptr);
      auto *Quant = dynamic_cast<ml::QuantizedModel *>(M.get());
      if (Algo == ml::InferenceAlgorithm::Quantized) {
        ASSERT_NE(Quant, nullptr) << "silent FP fallback";
        EXPECT_EQ(M->name(),
                  std::string("Q") + Quant->reference().name());
      } else {
        EXPECT_EQ(Quant, nullptr);
      }
      const double P = M->predict(Train.row(0));
      EXPECT_TRUE(std::isfinite(P));
    }
  }
}

// With no explicit algorithm argument, fitPaperModel follows the
// process-wide default (the --infer-algo / SLOPE_INFER_ALGO knob).
TEST(ModelZoo, DefaultAlgorithmFollowsGlobal) {
  InferenceAlgorithmGuard Guard;
  ml::Dataset Train = miniDataset(3, 0xD0);

  ml::setDefaultInferenceAlgorithm(ml::InferenceAlgorithm::Quantized);
  std::unique_ptr<ml::Model> Q = fitPaperModel(ModelFamily::LR, 1, Train);
  EXPECT_NE(dynamic_cast<ml::QuantizedModel *>(Q.get()), nullptr);

  ml::setDefaultInferenceAlgorithm(ml::InferenceAlgorithm::Fp);
  std::unique_ptr<ml::Model> F = fitPaperModel(ModelFamily::LR, 1, Train);
  EXPECT_EQ(dynamic_cast<ml::QuantizedModel *>(F.get()), nullptr);
}
