//===- tests/core/ReportTest.cpp - Report rendering tests -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"

#include "pmc/PlatformEvents.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

TEST(Report, Table1CarriesTheSpecs) {
  std::string Text = renderTable1(Platform::intelHaswellServer(),
                                  Platform::intelSkylakeServer());
  EXPECT_NE(Text.find("Intel E5-2670 v3"), std::string::npos);
  EXPECT_NE(Text.find("Intel Xeon Gold 6152"), std::string::npos);
  EXPECT_NE(Text.find("30720 KB"), std::string::npos);
  EXPECT_NE(Text.find("240 W"), std::string::npos);
  EXPECT_NE(Text.find("Ubuntu 16.04 LTS"), std::string::npos);
}

TEST(Report, CompactPmcListUsesIndices) {
  std::vector<std::string> Universe = pmc::haswellClassAPmcNames();
  EXPECT_EQ(compactPmcList({Universe[0], Universe[5]}, Universe, 'X'),
            "X1,X6");
}

TEST(Report, CompactPmcListKeepsUnknownNames) {
  std::vector<std::string> Universe = pmc::haswellClassAPmcNames();
  EXPECT_EQ(compactPmcList({"SOMETHING_ELSE"}, Universe, 'X'),
            "SOMETHING_ELSE");
}

TEST(Report, Table2ListsAllSixPmcs) {
  ClassAResult Result;
  for (const std::string &Name : pmc::haswellClassAPmcNames()) {
    AdditivityResult R;
    R.Name = Name;
    R.MaxErrorPct = 42;
    Result.AdditivityTable.push_back(R);
  }
  std::string Text = renderTable2(Result);
  EXPECT_NE(Text.find("X1: IDQ_MITE_UOPS"), std::string::npos);
  EXPECT_NE(Text.find("X6: UOPS_EXECUTED_PORT_PORT_6"), std::string::npos);
}

TEST(Report, ModelTableWithCoefficients) {
  ModelEvalRow Row;
  Row.Label = "LR1";
  Row.Pmcs = pmc::haswellClassAPmcNames();
  Row.Coefficients = {3.83e-9, 0, 0, 0, 5.56e-8, 0};
  Row.Errors.Min = 6.6;
  Row.Errors.Avg = 31.2;
  Row.Errors.Max = 61.9;
  std::string Text = renderModelFamilyTable("Table 3.", {Row}, true);
  EXPECT_NE(Text.find("LR1"), std::string::npos);
  EXPECT_NE(Text.find("3.83E-09"), std::string::npos);
  EXPECT_NE(Text.find("(6.6, 31.2, 61.9)"), std::string::npos);
  EXPECT_NE(Text.find("X1,X2,X3,X4,X5,X6"), std::string::npos);
}

TEST(Report, ModelTableWithoutCoefficients) {
  ModelEvalRow Row;
  Row.Label = "RF4";
  Row.Pmcs = {"IDQ_MITE_UOPS"};
  std::string Text = renderModelFamilyTable("Table 4.", {Row}, false);
  EXPECT_EQ(Text.find("Coefficients"), std::string::npos);
}

TEST(Report, Table6GroupsPaAndPna) {
  ClassBCResult Result;
  for (const std::string &Name : pmc::skylakePaNames())
    Result.Pa.push_back({Name, 0.99, 1.0, true});
  for (const std::string &Name : pmc::skylakePnaNames())
    Result.Pna.push_back({Name, 0.5, 40.0, false});
  std::string Text = renderTable6(Result);
  EXPECT_NE(Text.find("X9"), std::string::npos);
  EXPECT_NE(Text.find("Y9"), std::string::npos);
  EXPECT_NE(Text.find("MEM_LOAD_RETIRED_L3_MISS"), std::string::npos);
}

TEST(Report, Table7LabelsSetsCorrectly) {
  ClassBCResult Result;
  ModelEvalRow Row;
  Row.Label = "LR-A";
  Result.ClassB.push_back(Row);
  Row.Label = "LR-NA";
  Result.ClassB.push_back(Row);
  Row.Label = "NN-A4";
  Result.ClassC.push_back(Row);
  Row.Label = "NN-NA4";
  Result.ClassC.push_back(Row);
  std::string Text = renderTable7(Result);
  EXPECT_NE(Text.find("| LR-A   | PA "), std::string::npos);
  EXPECT_NE(Text.find("PNA4"), std::string::npos);
}
