//===- tests/core/ExperimentsTest.cpp - Experiment driver tests ----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Runs reduced-size Class A and Class B/C experiments and checks the
// paper's qualitative findings hold. The full-size reproduction lives in
// the bench binaries; integration/EndToEndTest.cpp checks mid-size runs.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace slope;
using namespace slope::core;

namespace {
/// Small, fast Class A configuration.
ClassAConfig quickClassA() {
  ClassAConfig Config;
  Config.NumBaseApps = 48;
  Config.NumCompounds = 16;
  Config.NnEpochs = 80;
  Config.RfTrees = 30;
  return Config;
}

/// Small, fast Class B/C configuration.
ClassBCConfig quickClassBC() {
  ClassBCConfig Config;
  Config.MaxDatasetPoints = 120;
  Config.TrainRows = 96;
  Config.NnEpochs = 80;
  Config.RfTrees = 30;
  return Config;
}
} // namespace

TEST(ClassA, ProducesSixModelRowsPerFamily) {
  ClassAResult R = runClassA(quickClassA());
  EXPECT_EQ(R.AdditivityTable.size(), 6u);
  EXPECT_EQ(R.Lr.size(), 6u);
  EXPECT_EQ(R.Rf.size(), 6u);
  EXPECT_EQ(R.Nn.size(), 6u);
  EXPECT_EQ(R.TrainRows, 48u);
  EXPECT_EQ(R.TestRows, 16u);
}

TEST(ClassA, NoPmcIsAdditiveOnTheDiverseSuite) {
  // Paper Sect. 5.1: "found no PMC to be additive" at 5% tolerance.
  ClassAResult R = runClassA(quickClassA());
  for (const AdditivityResult &A : R.AdditivityTable)
    EXPECT_FALSE(A.Additive) << A.Name;
}

TEST(ClassA, DividerHasHighestAdditivityError) {
  ClassAResult R = runClassA(quickClassA());
  double DivErr = 0, MaxOther = 0;
  for (const AdditivityResult &A : R.AdditivityTable) {
    if (A.Name == "ARITH_DIVIDER_COUNT")
      DivErr = A.MaxErrorPct;
    else
      MaxOther = std::max(MaxOther, A.MaxErrorPct);
  }
  EXPECT_GT(DivErr, MaxOther);
}

TEST(ClassA, RemovingNonAdditivePmcsImprovesLr) {
  // The headline result: some reduced model beats the all-PMC model.
  ClassAResult R = runClassA(quickClassA());
  double Best = 1e300;
  for (size_t I = 1; I + 1 < R.Lr.size(); ++I)
    Best = std::min(Best, R.Lr[I].Errors.Avg);
  EXPECT_LT(Best, R.Lr.front().Errors.Avg);
}

TEST(ClassA, ModelsShrinkByOnePmcPerStep) {
  ClassAResult R = runClassA(quickClassA());
  for (size_t I = 0; I < R.Lr.size(); ++I) {
    EXPECT_EQ(R.Lr[I].Pmcs.size(), 6 - I);
    EXPECT_EQ(R.Rf[I].Pmcs.size(), 6 - I);
    EXPECT_EQ(R.Nn[I].Pmcs.size(), 6 - I);
  }
}

TEST(ClassA, LrCoefficientsAreNonNegative) {
  ClassAResult R = runClassA(quickClassA());
  for (const ModelEvalRow &Row : R.Lr) {
    EXPECT_EQ(Row.Coefficients.size(), Row.Pmcs.size());
    for (double C : Row.Coefficients)
      EXPECT_GE(C, 0.0);
  }
}

TEST(ClassA, RfAndNnRowsCarryNoCoefficients) {
  ClassAResult R = runClassA(quickClassA());
  for (const ModelEvalRow &Row : R.Rf)
    EXPECT_TRUE(Row.Coefficients.empty());
  for (const ModelEvalRow &Row : R.Nn)
    EXPECT_TRUE(Row.Coefficients.empty());
}

TEST(ClassA, DeterministicForFixedSeed) {
  ClassAResult A = runClassA(quickClassA());
  ClassAResult B = runClassA(quickClassA());
  for (size_t I = 0; I < 6; ++I) {
    EXPECT_DOUBLE_EQ(A.Lr[I].Errors.Avg, B.Lr[I].Errors.Avg);
    EXPECT_DOUBLE_EQ(A.Rf[I].Errors.Avg, B.Rf[I].Errors.Avg);
  }
}

TEST(ClassBC, ProducesTable6And7Shapes) {
  ClassBCResult R = runClassBC(quickClassBC());
  EXPECT_EQ(R.Pa.size(), 9u);
  EXPECT_EQ(R.Pna.size(), 9u);
  EXPECT_EQ(R.ClassB.size(), 6u);
  EXPECT_EQ(R.ClassC.size(), 6u);
  EXPECT_EQ(R.Pa4.size(), 4u);
  EXPECT_EQ(R.Pna4.size(), 4u);
  EXPECT_EQ(R.TrainRows + R.TestRows, 120u);
}

TEST(ClassBC, PaEventsAreAdditiveForDgemmFft) {
  ClassBCResult R = runClassBC(quickClassBC());
  for (const PmcCorrelationRow &Row : R.Pa)
    EXPECT_TRUE(Row.Additive) << Row.Name;
  for (const PmcCorrelationRow &Row : R.Pna)
    EXPECT_FALSE(Row.Additive) << Row.Name;
}

TEST(ClassBC, AdditiveModelsBeatNonAdditiveModels) {
  // Table 7a: every A model has better average accuracy than its NA twin.
  ClassBCResult R = runClassBC(quickClassBC());
  for (size_t I = 0; I + 1 < R.ClassB.size(); I += 2)
    EXPECT_LT(R.ClassB[I].Errors.Avg, R.ClassB[I + 1].Errors.Avg)
        << R.ClassB[I].Label;
}

TEST(ClassBC, FourPmcAdditiveModelsBeatNonAdditiveOnes) {
  // Table 7b.
  ClassBCResult R = runClassBC(quickClassBC());
  for (size_t I = 0; I + 1 < R.ClassC.size(); I += 2)
    EXPECT_LT(R.ClassC[I].Errors.Avg, R.ClassC[I + 1].Errors.Avg)
        << R.ClassC[I].Label;
}

TEST(ClassBC, Pa4IsASubsetOfPa) {
  ClassBCResult R = runClassBC(quickClassBC());
  for (const std::string &Name : R.Pa4) {
    bool Found = false;
    for (const PmcCorrelationRow &Row : R.Pa)
      if (Row.Name == Name)
        Found = true;
    EXPECT_TRUE(Found) << Name;
  }
}

TEST(ClassBC, MostPaEventsHighlyCorrelated) {
  ClassBCResult R = runClassBC(quickClassBC());
  size_t Highly = 0;
  for (const PmcCorrelationRow &Row : R.Pa)
    if (Row.Correlation > 0.75)
      ++Highly;
  EXPECT_GE(Highly, 6u); // X9 (L3 miss) is near zero by design.
}

namespace {
/// Small, fast Class D configuration.
ClassDConfig quickClassD() {
  ClassDConfig Config;
  Config.NumBaseApps = 14;
  Config.NumCompounds = 8;
  Config.NnEpochs = 40;
  Config.RfTrees = 12;
  return Config;
}
} // namespace

TEST(ClassD, CoversEveryOrderedPlatformPair) {
  ClassDResult R = runClassD(quickClassD());
  ASSERT_EQ(R.Platforms.size(), 4u);
  EXPECT_EQ(R.Platforms[0].Key, "haswell");
  EXPECT_EQ(R.Platforms[3].Key, "biglittle");
  EXPECT_EQ(R.Pairs.size(), 12u); // 4 * 3 ordered pairs.
  EXPECT_EQ(R.TrainRowsPerPlatform, 14u);
  EXPECT_EQ(R.TestRowsPerPlatform, 8u);
  for (const TransferPairResult &Pair : R.Pairs) {
    EXPECT_NE(Pair.TrainPlatform, Pair.TestPlatform);
    // Three families, each with a common-set cell (plus a filtered one
    // when the additive intersection is non-empty).
    EXPECT_GE(Pair.Cells.size(), 3u);
    for (const TransferCell &Cell : Pair.Cells)
      EXPECT_FALSE(Cell.Pmcs.empty()) << Pair.TrainPlatform << " -> "
                                      << Pair.TestPlatform;
  }
}

TEST(ClassD, ArmPlatformLacksDividerCounter) {
  // The canonical dictionary's "divides" entry has no ARM candidate, so
  // the big.LITTLE canonical set is strictly smaller — which is what
  // makes the cross-platform intersection a real operation.
  ClassDResult R = runClassD(quickClassD());
  const ClassDPlatformInfo &Haswell = R.Platforms[0];
  const ClassDPlatformInfo &BigLittle = R.Platforms[3];
  auto Has = [](const ClassDPlatformInfo &P, const char *Name) {
    return std::find(P.Canonical.begin(), P.Canonical.end(), Name) !=
           P.Canonical.end();
  };
  EXPECT_TRUE(Has(Haswell, "divides"));
  EXPECT_FALSE(Has(BigLittle, "divides"));
  EXPECT_LT(BigLittle.Canonical.size(), Haswell.Canonical.size());
}

TEST(ClassD, FilteredCellsUseTheAdditiveIntersection) {
  ClassDResult R = runClassD(quickClassD());
  for (size_t I = 0; I < R.Pairs.size(); ++I) {
    const TransferPairResult &Pair = R.Pairs[I];
    for (const TransferCell &Cell : Pair.Cells) {
      if (!Cell.Filtered)
        continue;
      // Every filtered counter is additive on both endpoints.
      for (size_t P = 0; P < R.Platforms.size(); ++P) {
        if (R.Platforms[P].Key != Pair.TrainPlatform &&
            R.Platforms[P].Key != Pair.TestPlatform)
          continue;
        for (const std::string &Pmc : Cell.Pmcs)
          EXPECT_NE(std::find(R.Platforms[P].AdditiveCanonical.begin(),
                              R.Platforms[P].AdditiveCanonical.end(), Pmc),
                    R.Platforms[P].AdditiveCanonical.end())
              << Pmc << " not additive on " << R.Platforms[P].Key;
      }
    }
  }
}

TEST(ClassD, BigLittleComparesPooledAgainstPerClusterModels) {
  ClassDResult R = runClassD(quickClassD());
  ASSERT_EQ(R.BigLittle.size(), 6u); // 3 families x {pooled, cluster}.
  for (size_t I = 0; I < R.BigLittle.size(); I += 2) {
    EXPECT_NE(R.BigLittle[I].Label.find("-pooled"), std::string::npos);
    EXPECT_NE(R.BigLittle[I + 1].Label.find("-cluster"), std::string::npos);
    // Both rows predict the same board-level energies over the same
    // canonical counters, so the error summaries are comparable.
    EXPECT_EQ(R.BigLittle[I].Pmcs, R.BigLittle[I + 1].Pmcs);
    EXPECT_GT(R.BigLittle[I].Errors.Avg, 0.0);
    EXPECT_GT(R.BigLittle[I + 1].Errors.Avg, 0.0);
  }
}

namespace {
/// Restores the default pool size even if the test fails.
struct ThreadCountGuard {
  ~ThreadCountGuard() { ThreadPool::setGlobalThreadCount(0); }
};

/// Flattens the bits of a Class D result that must be thread-invariant.
std::string classDFingerprint(const ClassDResult &R) {
  std::string Out;
  for (const TransferPairResult &Pair : R.Pairs) {
    Out += Pair.TrainPlatform + ">" + Pair.TestPlatform + ":";
    for (const TransferCell &Cell : Pair.Cells)
      Out += Cell.Family + (Cell.Filtered ? "/f=" : "/u=") +
             Cell.Errors.str() + ";";
  }
  for (const ModelEvalRow &Row : R.BigLittle)
    Out += Row.Label + "=" + Row.Errors.str() + ";";
  return Out;
}
} // namespace

TEST(ClassD, ResultIsBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard Guard;
  ThreadPool::setGlobalThreadCount(1);
  std::string OneThread = classDFingerprint(runClassD(quickClassD()));
  ThreadPool::setGlobalThreadCount(4);
  std::string FourThreads = classDFingerprint(runClassD(quickClassD()));
  EXPECT_EQ(OneThread, FourThreads);
}
