//===- tests/core/ExperimentsTest.cpp - Experiment driver tests ----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Runs reduced-size Class A and Class B/C experiments and checks the
// paper's qualitative findings hold. The full-size reproduction lives in
// the bench binaries; integration/EndToEndTest.cpp checks mid-size runs.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::core;

namespace {
/// Small, fast Class A configuration.
ClassAConfig quickClassA() {
  ClassAConfig Config;
  Config.NumBaseApps = 48;
  Config.NumCompounds = 16;
  Config.NnEpochs = 80;
  Config.RfTrees = 30;
  return Config;
}

/// Small, fast Class B/C configuration.
ClassBCConfig quickClassBC() {
  ClassBCConfig Config;
  Config.MaxDatasetPoints = 120;
  Config.TrainRows = 96;
  Config.NnEpochs = 80;
  Config.RfTrees = 30;
  return Config;
}
} // namespace

TEST(ClassA, ProducesSixModelRowsPerFamily) {
  ClassAResult R = runClassA(quickClassA());
  EXPECT_EQ(R.AdditivityTable.size(), 6u);
  EXPECT_EQ(R.Lr.size(), 6u);
  EXPECT_EQ(R.Rf.size(), 6u);
  EXPECT_EQ(R.Nn.size(), 6u);
  EXPECT_EQ(R.TrainRows, 48u);
  EXPECT_EQ(R.TestRows, 16u);
}

TEST(ClassA, NoPmcIsAdditiveOnTheDiverseSuite) {
  // Paper Sect. 5.1: "found no PMC to be additive" at 5% tolerance.
  ClassAResult R = runClassA(quickClassA());
  for (const AdditivityResult &A : R.AdditivityTable)
    EXPECT_FALSE(A.Additive) << A.Name;
}

TEST(ClassA, DividerHasHighestAdditivityError) {
  ClassAResult R = runClassA(quickClassA());
  double DivErr = 0, MaxOther = 0;
  for (const AdditivityResult &A : R.AdditivityTable) {
    if (A.Name == "ARITH_DIVIDER_COUNT")
      DivErr = A.MaxErrorPct;
    else
      MaxOther = std::max(MaxOther, A.MaxErrorPct);
  }
  EXPECT_GT(DivErr, MaxOther);
}

TEST(ClassA, RemovingNonAdditivePmcsImprovesLr) {
  // The headline result: some reduced model beats the all-PMC model.
  ClassAResult R = runClassA(quickClassA());
  double Best = 1e300;
  for (size_t I = 1; I + 1 < R.Lr.size(); ++I)
    Best = std::min(Best, R.Lr[I].Errors.Avg);
  EXPECT_LT(Best, R.Lr.front().Errors.Avg);
}

TEST(ClassA, ModelsShrinkByOnePmcPerStep) {
  ClassAResult R = runClassA(quickClassA());
  for (size_t I = 0; I < R.Lr.size(); ++I) {
    EXPECT_EQ(R.Lr[I].Pmcs.size(), 6 - I);
    EXPECT_EQ(R.Rf[I].Pmcs.size(), 6 - I);
    EXPECT_EQ(R.Nn[I].Pmcs.size(), 6 - I);
  }
}

TEST(ClassA, LrCoefficientsAreNonNegative) {
  ClassAResult R = runClassA(quickClassA());
  for (const ModelEvalRow &Row : R.Lr) {
    EXPECT_EQ(Row.Coefficients.size(), Row.Pmcs.size());
    for (double C : Row.Coefficients)
      EXPECT_GE(C, 0.0);
  }
}

TEST(ClassA, RfAndNnRowsCarryNoCoefficients) {
  ClassAResult R = runClassA(quickClassA());
  for (const ModelEvalRow &Row : R.Rf)
    EXPECT_TRUE(Row.Coefficients.empty());
  for (const ModelEvalRow &Row : R.Nn)
    EXPECT_TRUE(Row.Coefficients.empty());
}

TEST(ClassA, DeterministicForFixedSeed) {
  ClassAResult A = runClassA(quickClassA());
  ClassAResult B = runClassA(quickClassA());
  for (size_t I = 0; I < 6; ++I) {
    EXPECT_DOUBLE_EQ(A.Lr[I].Errors.Avg, B.Lr[I].Errors.Avg);
    EXPECT_DOUBLE_EQ(A.Rf[I].Errors.Avg, B.Rf[I].Errors.Avg);
  }
}

TEST(ClassBC, ProducesTable6And7Shapes) {
  ClassBCResult R = runClassBC(quickClassBC());
  EXPECT_EQ(R.Pa.size(), 9u);
  EXPECT_EQ(R.Pna.size(), 9u);
  EXPECT_EQ(R.ClassB.size(), 6u);
  EXPECT_EQ(R.ClassC.size(), 6u);
  EXPECT_EQ(R.Pa4.size(), 4u);
  EXPECT_EQ(R.Pna4.size(), 4u);
  EXPECT_EQ(R.TrainRows + R.TestRows, 120u);
}

TEST(ClassBC, PaEventsAreAdditiveForDgemmFft) {
  ClassBCResult R = runClassBC(quickClassBC());
  for (const PmcCorrelationRow &Row : R.Pa)
    EXPECT_TRUE(Row.Additive) << Row.Name;
  for (const PmcCorrelationRow &Row : R.Pna)
    EXPECT_FALSE(Row.Additive) << Row.Name;
}

TEST(ClassBC, AdditiveModelsBeatNonAdditiveModels) {
  // Table 7a: every A model has better average accuracy than its NA twin.
  ClassBCResult R = runClassBC(quickClassBC());
  for (size_t I = 0; I + 1 < R.ClassB.size(); I += 2)
    EXPECT_LT(R.ClassB[I].Errors.Avg, R.ClassB[I + 1].Errors.Avg)
        << R.ClassB[I].Label;
}

TEST(ClassBC, FourPmcAdditiveModelsBeatNonAdditiveOnes) {
  // Table 7b.
  ClassBCResult R = runClassBC(quickClassBC());
  for (size_t I = 0; I + 1 < R.ClassC.size(); I += 2)
    EXPECT_LT(R.ClassC[I].Errors.Avg, R.ClassC[I + 1].Errors.Avg)
        << R.ClassC[I].Label;
}

TEST(ClassBC, Pa4IsASubsetOfPa) {
  ClassBCResult R = runClassBC(quickClassBC());
  for (const std::string &Name : R.Pa4) {
    bool Found = false;
    for (const PmcCorrelationRow &Row : R.Pa)
      if (Row.Name == Name)
        Found = true;
    EXPECT_TRUE(Found) << Name;
  }
}

TEST(ClassBC, MostPaEventsHighlyCorrelated) {
  ClassBCResult R = runClassBC(quickClassBC());
  size_t Highly = 0;
  for (const PmcCorrelationRow &Row : R.Pa)
    if (Row.Correlation > 0.75)
      ++Highly;
  EXPECT_GE(Highly, 6u); // X9 (L3 miss) is near zero by design.
}
