//===- tests/core/ServingEngineTest.cpp - Serving engine tests ------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/ServingEngine.h"

#include "core/OnlineEstimator.h"
#include "ml/LinearRegression.h"
#include "ml/QuantizedModel.h"
#include "pmc/PlatformEvents.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

namespace {

/// Restores automatic global-pool sizing when a test returns.
struct ThreadCountGuard {
  ~ThreadCountGuard() { ThreadPool::setGlobalThreadCount(0); }
};

/// Deterministic stand-in model: predicts the plain sum of the features,
/// so expected accumulations can be checked by hand (fit is a no-op).
class SumModel : public ml::Model {
public:
  Expected<bool> fit(const ml::Dataset &) override { return true; }
  double predict(const std::vector<double> &Features) const override {
    double Sum = 0;
    for (double F : Features)
      Sum += F;
    return Sum;
  }
  std::string name() const override { return "sum"; }
};

/// One synthetic observation stream, columnar like a FleetTrace.
struct MiniTrace {
  size_t Width = 0;
  uint32_t NumTenants = 0;
  uint32_t NumApps = 0;
  std::vector<uint32_t> Tenants;
  std::vector<uint32_t> Apps;
  std::vector<double> Features; ///< Flat row-major.

  size_t size() const { return Tenants.size(); }
};

/// Draws a deterministic skewed stream for the property tests.
MiniTrace makeMiniTrace(size_t NumObservations, uint32_t NumTenants,
                        uint32_t NumApps, size_t Width, uint64_t Seed) {
  MiniTrace T;
  T.Width = Width;
  T.NumTenants = NumTenants;
  T.NumApps = NumApps;
  Rng Base(Seed);
  for (size_t I = 0; I < NumObservations; ++I) {
    Rng R = Base.fork(I);
    // Square the tenant draw to skew traffic toward low ids.
    double U = R.uniform();
    T.Tenants.push_back(static_cast<uint32_t>(U * U * NumTenants));
    T.Apps.push_back(static_cast<uint32_t>(R.below(NumApps)));
    for (size_t F = 0; F < Width; ++F)
      T.Features.push_back(R.uniform(0.25, 4.0));
  }
  return T;
}

/// Replays \p T through a fresh engine with the given config.
ServingEngine replayed(const ml::Model &M, const MiniTrace &T,
                       ServingConfig Config) {
  ServingEngine Engine(M, T.Width, T.NumTenants, T.NumApps, Config);
  for (size_t I = 0; I < T.size(); ++I)
    Engine.ingest(T.Tenants[I], T.Apps[I], T.Features.data() + I * T.Width);
  Engine.endEpoch();
  return Engine;
}

/// A small training set over the same feature distribution the mini
/// traces draw from (so quantization calibration covers the trace).
ml::Dataset miniTrainingSet(size_t Width, uint64_t Seed) {
  Rng R(Seed);
  std::vector<std::string> Names;
  for (size_t F = 0; F < Width; ++F)
    Names.push_back("f" + std::to_string(F));
  ml::Dataset Train(Names);
  for (int I = 0; I < 200; ++I) {
    std::vector<double> X(Width);
    double Y = 0;
    for (size_t F = 0; F < Width; ++F) {
      X[F] = R.uniform(0.25, 4.0);
      Y += static_cast<double>(F + 1) * X[F];
    }
    Train.addRow(X, Y + R.gaussian(0, 0.1));
  }
  return Train;
}

/// Fits a fresh LR on \p Train; the NNLS-free default solver is
/// deterministic, so two calls produce identical models.
std::unique_ptr<ml::Model> fittedLr(const ml::Dataset &Train) {
  auto M = std::make_unique<ml::LinearRegression>();
  auto Fit = M->fit(Train);
  assert(Fit);
  (void)Fit;
  return M;
}

} // namespace

TEST(ServingEngine, HandCheckedMiniTrace) {
  SumModel M;
  ServingConfig Config;
  Config.NumShards = 2;
  ServingEngine Engine(M, 2, /*NumTenants=*/3, /*NumApps=*/2, Config);

  const double Rows[4][2] = {{1, 2}, {10, 0.5}, {2, 3}, {0.5, 0.25}};
  Engine.ingest(0, 0, Rows[0]); // tenant 0, app 0 -> 3
  Engine.ingest(1, 1, Rows[1]); // tenant 1, app 1 -> 10.5
  Engine.ingest(0, 1, Rows[2]); // tenant 0, app 1 -> 5
  Engine.ingest(2, 0, Rows[3]); // tenant 2, app 0 -> 0.75

  // Nothing is query-visible until the epoch folds.
  EXPECT_EQ(Engine.fleetEnergy(), 0.0);
  EXPECT_EQ(Engine.tenantObservations(0), 0u);

  Engine.endEpoch();
  EXPECT_EQ(Engine.tenantEnergy(0), 8.0);
  EXPECT_EQ(Engine.tenantEnergy(1), 10.5);
  EXPECT_EQ(Engine.tenantEnergy(2), 0.75);
  EXPECT_EQ(Engine.tenantObservations(0), 2u);
  EXPECT_EQ(Engine.tenantObservations(1), 1u);
  EXPECT_EQ(Engine.tenantObservations(2), 1u);
  EXPECT_EQ(Engine.appEnergy(0), 3.75);
  EXPECT_EQ(Engine.appEnergy(1), 15.5);
  EXPECT_EQ(Engine.appObservations(0), 2u);
  EXPECT_EQ(Engine.appObservations(1), 2u);
  EXPECT_EQ(Engine.fleetEnergy(), 19.25);
  EXPECT_EQ(Engine.stats().Observations, 4u);
  EXPECT_EQ(Engine.stats().Epochs, 1u);
}

TEST(ServingEngine, AutoFoldsWhenEpochSizeReached) {
  SumModel M;
  ServingConfig Config;
  Config.NumShards = 1;
  Config.EpochSize = 4;
  Config.BatchSize = 8;
  ServingEngine Engine(M, 1, 2, 1, Config);
  const double One = 1.0;
  for (int I = 0; I < 4; ++I)
    Engine.ingest(static_cast<uint32_t>(I % 2), 0, &One);
  // The fourth ingest crossed EpochSize: folded with no explicit call.
  EXPECT_EQ(Engine.stats().Epochs, 1u);
  EXPECT_EQ(Engine.fleetEnergy(), 4.0);
  // A second, partial epoch folds on the explicit boundary only.
  Engine.ingest(0, 0, &One);
  EXPECT_EQ(Engine.fleetEnergy(), 4.0);
  Engine.endEpoch();
  EXPECT_EQ(Engine.fleetEnergy(), 5.0);
  EXPECT_EQ(Engine.stats().Epochs, 2u);
  EXPECT_EQ(Engine.stats().Batches, 2u); // 4-row epoch + 1-row epoch.
}

TEST(ServingEngine, EpochFoldTotalsEqualSerialAccumulation) {
  SumModel M;
  MiniTrace T = makeMiniTrace(5000, 37, 5, 3, 0xABCD);

  // Reference: one pass in trace order, accumulating per (tenant, app)
  // exactly like an unsharded, unbatched server would.
  std::vector<double> WantEnergy(T.NumTenants * T.NumApps, 0.0);
  std::vector<uint64_t> WantCount(T.NumTenants * T.NumApps, 0);
  std::vector<double> Row(T.Width);
  for (size_t I = 0; I < T.size(); ++I) {
    for (size_t F = 0; F < T.Width; ++F)
      Row[F] = T.Features[I * T.Width + F];
    const size_t Cell = T.Tenants[I] * T.NumApps + T.Apps[I];
    WantEnergy[Cell] += M.predict(Row);
    WantCount[Cell] += 1;
  }

  // Forced through multiple partial epochs and small batches.
  ServingConfig Config;
  Config.NumShards = 3;
  Config.EpochSize = 512;
  Config.BatchSize = 32;
  ServingEngine Engine = replayed(M, T, Config);
  for (uint32_t Tenant = 0; Tenant < T.NumTenants; ++Tenant) {
    double Energy = 0;
    uint64_t Count = 0;
    for (uint32_t App = 0; App < T.NumApps; ++App) {
      Energy += WantEnergy[Tenant * T.NumApps + App];
      Count += WantCount[Tenant * T.NumApps + App];
    }
    EXPECT_EQ(Engine.tenantEnergy(Tenant), Energy) << "tenant " << Tenant;
    EXPECT_EQ(Engine.tenantObservations(Tenant), Count);
  }
  EXPECT_EQ(Engine.stats().Observations, T.size());
  EXPECT_EQ(Engine.stats().Epochs, 10u); // ceil(5000 / 512).
}

TEST(ServingEngine, BitIdenticalAtAnyShardAndThreadCount) {
  ThreadCountGuard Guard;
  SumModel M;
  MiniTrace T = makeMiniTrace(4000, 29, 4, 3, 0x5EED);

  ThreadPool::setGlobalThreadCount(1);
  ServingConfig Baseline;
  Baseline.NumShards = 1;
  Baseline.EpochSize = 600;
  ServingEngine Reference = replayed(M, T, Baseline);

  for (unsigned Shards : {2u, 8u, 64u}) {
    for (unsigned Threads : {1u, 2u, 8u}) {
      ThreadPool::setGlobalThreadCount(Threads);
      ServingConfig Config = Baseline;
      Config.NumShards = Shards;
      ServingEngine Engine = replayed(M, T, Config);
      for (uint32_t Tenant = 0; Tenant < T.NumTenants; ++Tenant) {
        ASSERT_EQ(Engine.tenantEnergy(Tenant),
                  Reference.tenantEnergy(Tenant))
            << Shards << " shards, " << Threads << " threads, tenant "
            << Tenant;
        ASSERT_EQ(Engine.tenantObservations(Tenant),
                  Reference.tenantObservations(Tenant));
      }
      for (uint32_t App = 0; App < T.NumApps; ++App) {
        ASSERT_EQ(Engine.appEnergy(App), Reference.appEnergy(App));
        ASSERT_EQ(Engine.appObservations(App),
                  Reference.appObservations(App));
      }
      ASSERT_EQ(Engine.fleetEnergy(), Reference.fleetEnergy());
    }
  }
}

TEST(ServingEngine, BatchCountIsDeterministicPerShardCount) {
  SumModel M;
  ServingConfig Config;
  Config.NumShards = 1;
  Config.EpochSize = 64;
  Config.BatchSize = 8;
  ServingEngine Engine(M, 1, 4, 1, Config);
  const double One = 1.0;
  for (int I = 0; I < 20; ++I)
    Engine.ingest(static_cast<uint32_t>(I % 4), 0, &One);
  Engine.endEpoch();
  EXPECT_EQ(Engine.stats().Batches, 3u); // ceil(20 / 8) in one shard.
  EXPECT_EQ(Engine.stats().BatchMs.size(), 3u);
}

TEST(ServingEngine, PartialFinalEpochIsFolded) {
  SumModel M;
  MiniTrace T = makeMiniTrace(1000, 17, 3, 2, 0xFACE);

  // Serial reference accumulation, one pass in trace order, per
  // (tenant, app) cell to match the engine's summation order.
  std::vector<double> WantEnergy(T.NumTenants * T.NumApps, 0.0);
  std::vector<uint64_t> WantCount(T.NumTenants * T.NumApps, 0);
  std::vector<double> Row(T.Width);
  for (size_t I = 0; I < T.size(); ++I) {
    for (size_t F = 0; F < T.Width; ++F)
      Row[F] = T.Features[I * T.Width + F];
    const size_t Cell = T.Tenants[I] * T.NumApps + T.Apps[I];
    WantEnergy[Cell] += M.predict(Row);
    WantCount[Cell] += 1;
  }

  // 1000 = 3 * 300 + 100: the last 100 observations only reach the
  // tables if endEpoch folds the partial remainder.
  ServingConfig Config;
  Config.NumShards = 2;
  Config.EpochSize = 300;
  Config.BatchSize = 16;
  ServingEngine Engine = replayed(M, T, Config);
  EXPECT_EQ(Engine.stats().Epochs, 4u); // ceil(1000 / 300).
  EXPECT_EQ(Engine.stats().Observations, T.size());
  for (uint32_t Tenant = 0; Tenant < T.NumTenants; ++Tenant) {
    double Energy = 0;
    uint64_t Count = 0;
    for (uint32_t App = 0; App < T.NumApps; ++App) {
      Energy += WantEnergy[Tenant * T.NumApps + App];
      Count += WantCount[Tenant * T.NumApps + App];
    }
    EXPECT_EQ(Engine.tenantEnergy(Tenant), Energy) << "tenant " << Tenant;
    EXPECT_EQ(Engine.tenantObservations(Tenant), Count);
  }
}

TEST(ServingEngine, EpochLargerThanTraceFoldsOnce) {
  SumModel M;
  MiniTrace T = makeMiniTrace(1000, 11, 2, 2, 0xD1CE);
  ServingConfig Config;
  Config.NumShards = 2;
  Config.EpochSize = 5000; // Never reached: the whole trace is partial.
  ServingEngine Engine = replayed(M, T, Config);
  EXPECT_EQ(Engine.stats().Epochs, 1u);
  EXPECT_EQ(Engine.stats().Observations, T.size());
  uint64_t Folded = 0;
  for (uint32_t Tenant = 0; Tenant < T.NumTenants; ++Tenant)
    Folded += Engine.tenantObservations(Tenant);
  EXPECT_EQ(Folded, T.size());
  EXPECT_GT(Engine.fleetEnergy(), 0.0);
}

TEST(ServingEngine, QuantizedReplayMatchesFpWithinBound) {
  ml::Dataset Train = miniTrainingSet(3, 0x99);
  std::unique_ptr<ml::Model> Fp = fittedLr(Train);
  auto Quant = ml::QuantizedModel::build(fittedLr(Train), Train);
  ASSERT_TRUE(bool(Quant));

  // Uneven epoch size on purpose: the partial-epoch fold must also be
  // exercised by the integer fast path.
  MiniTrace T = makeMiniTrace(3000, 23, 4, 3, 0xBEEF);
  ServingConfig Config;
  Config.NumShards = 2;
  Config.EpochSize = 700;
  Config.BatchSize = 64;
  ServingEngine FpEngine = replayed(*Fp, T, Config);
  ServingEngine QEngine = replayed(**Quant, T, Config);

  EXPECT_EQ(QEngine.stats().Epochs, 5u); // ceil(3000 / 700).
  EXPECT_EQ(QEngine.stats().Observations, T.size());
  EXPECT_EQ(QEngine.stats().Batches, FpEngine.stats().Batches);

  std::vector<double> FpEnergy, QEnergy;
  for (uint32_t Tenant = 0; Tenant < T.NumTenants; ++Tenant) {
    FpEnergy.push_back(FpEngine.tenantEnergy(Tenant));
    QEnergy.push_back(QEngine.tenantEnergy(Tenant));
    ASSERT_EQ(QEngine.tenantObservations(Tenant),
              FpEngine.tenantObservations(Tenant));
  }
  for (uint32_t App = 0; App < T.NumApps; ++App) {
    FpEnergy.push_back(FpEngine.appEnergy(App));
    QEnergy.push_back(QEngine.appEnergy(App));
    ASSERT_EQ(QEngine.appObservations(App), FpEngine.appObservations(App));
  }
  FpEnergy.push_back(FpEngine.fleetEnergy());
  QEnergy.push_back(QEngine.fleetEnergy());
  EXPECT_LT(ml::maxRelativeError(FpEnergy, QEnergy), 1e-4);
}

TEST(ServingEngine, QuantizedReplayBitIdenticalAtAnyShardAndThreadCount) {
  ThreadCountGuard Guard;
  ml::Dataset Train = miniTrainingSet(3, 0x77);
  auto Quant = ml::QuantizedModel::build(fittedLr(Train), Train);
  ASSERT_TRUE(bool(Quant));
  MiniTrace T = makeMiniTrace(4000, 29, 4, 3, 0x5EED);

  ThreadPool::setGlobalThreadCount(1);
  ServingConfig Baseline;
  Baseline.NumShards = 1;
  Baseline.EpochSize = 600;
  ServingEngine Reference = replayed(**Quant, T, Baseline);

  for (unsigned Shards : {2u, 8u, 64u}) {
    for (unsigned Threads : {1u, 2u, 8u}) {
      ThreadPool::setGlobalThreadCount(Threads);
      ServingConfig Config = Baseline;
      Config.NumShards = Shards;
      ServingEngine Engine = replayed(**Quant, T, Config);
      for (uint32_t Tenant = 0; Tenant < T.NumTenants; ++Tenant) {
        ASSERT_EQ(Engine.tenantEnergy(Tenant),
                  Reference.tenantEnergy(Tenant))
            << Shards << " shards, " << Threads << " threads, tenant "
            << Tenant;
        ASSERT_EQ(Engine.tenantObservations(Tenant),
                  Reference.tenantObservations(Tenant));
      }
      ASSERT_EQ(Engine.fleetEnergy(), Reference.fleetEnergy());
    }
  }
}

TEST(FleetTrace, SynthesisIsDeterministicAtAnyThreadCount) {
  ThreadCountGuard Guard;
  Machine M1(Platform::intelSkylakeServer(), 9);
  Machine M2(Platform::intelSkylakeServer(), 9);
  std::vector<std::string> Pa = pmc::skylakePaNames();
  std::vector<pmc::EventId> Events;
  for (const std::string &Name : {Pa[0], Pa[1]})
    Events.push_back(*M1.registry().lookup(Name));
  std::vector<CompoundApplication> Apps = {
      CompoundApplication(Application(KernelKind::MklDgemm, 9000)),
      CompoundApplication(Application(KernelKind::Stream, 20000000))};

  FleetTraceConfig Config;
  Config.NumObservations = 3000;
  Config.NumTenants = 41;
  Config.PrototypesPerApp = 3;
  ThreadPool::setGlobalThreadCount(1);
  auto A = FleetTrace::synthesize(M1, Events, Apps, Config);
  ASSERT_TRUE(bool(A));
  ThreadPool::setGlobalThreadCount(8);
  auto B = FleetTrace::synthesize(M2, Events, Apps, Config);
  ASSERT_TRUE(bool(B));

  ASSERT_EQ(A->size(), Config.NumObservations);
  ASSERT_EQ(A->width(), Events.size());
  for (size_t I = 0; I < A->size(); ++I) {
    ASSERT_EQ(A->tenant(I), B->tenant(I)) << "observation " << I;
    ASSERT_LT(A->tenant(I), Config.NumTenants);
    ASSERT_EQ(A->app(I), B->app(I));
    ASSERT_LT(A->app(I), Apps.size());
    for (size_t F = 0; F < A->width(); ++F)
      ASSERT_EQ(A->features(I)[F], B->features(I)[F]);
  }
}

TEST(FleetTrace, RejectsDegenerateConfigurations) {
  Machine M(Platform::intelSkylakeServer(), 10);
  std::vector<pmc::EventId> Events = {
      *M.registry().lookup(pmc::skylakePaNames()[0])};
  std::vector<CompoundApplication> Apps = {
      CompoundApplication(Application(KernelKind::MklDgemm, 9000))};
  EXPECT_FALSE(bool(FleetTrace::synthesize(M, Events, {}, FleetTraceConfig())));
  EXPECT_FALSE(bool(FleetTrace::synthesize(M, {}, Apps, FleetTraceConfig())));
  FleetTraceConfig NoTenants;
  NoTenants.NumTenants = 0;
  EXPECT_FALSE(bool(FleetTrace::synthesize(M, Events, Apps, NoTenants)));
}

TEST(ServingEngine, ServesARealEstimatorTraceAcrossShardCounts) {
  ThreadCountGuard Guard;
  Machine M(Platform::intelSkylakeServer(), 21);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
  std::vector<std::string> Pa = pmc::skylakePaNames();
  std::vector<std::string> Names = {Pa[0], Pa[1], Pa[3], Pa[7]};
  std::vector<CompoundApplication> Apps;
  for (uint64_t N = 7000; N <= 18000; N += 1000)
    Apps.emplace_back(Application(KernelKind::MklDgemm, N));
  auto Estimator = OnlineEstimator::train(M, Meter, Names, Apps);
  ASSERT_TRUE(bool(Estimator));

  FleetTraceConfig Config;
  Config.NumObservations = 2000;
  Config.NumTenants = 50;
  Config.PrototypesPerApp = 2;
  auto Trace = FleetTrace::synthesize(M, Estimator->events(), Apps, Config);
  ASSERT_TRUE(bool(Trace));

  ServingConfig OneShard;
  OneShard.NumShards = 1;
  OneShard.EpochSize = 256;
  ServingEngine Reference(Estimator->model(), Trace->width(),
                          Config.NumTenants, Trace->numApps(), OneShard);
  Reference.replay(*Trace);
  EXPECT_EQ(Reference.stats().Observations, Trace->size());
  EXPECT_GT(Reference.fleetEnergy(), 0.0);

  ThreadPool::setGlobalThreadCount(4);
  ServingConfig FourShards = OneShard;
  FourShards.NumShards = 4;
  ServingEngine Sharded(Estimator->model(), Trace->width(),
                        Config.NumTenants, Trace->numApps(), FourShards);
  Sharded.replay(*Trace);
  for (uint32_t Tenant = 0; Tenant < Config.NumTenants; ++Tenant)
    ASSERT_EQ(Sharded.tenantEnergy(Tenant), Reference.tenantEnergy(Tenant));
  ASSERT_EQ(Sharded.fleetEnergy(), Reference.fleetEnergy());
}

namespace {

/// A small drifting labeled fleet trace over real simulated events, plus
/// the event list used to synthesize it.
Expected<FleetTrace> makeDriftingTrace(Machine &M, size_t NumObservations,
                                       double DriftMax) {
  std::vector<std::string> Pa = pmc::skylakePaNames();
  std::vector<pmc::EventId> Events;
  for (const std::string &Name : {Pa[0], Pa[1], Pa[3], Pa[7]})
    Events.push_back(*M.registry().lookup(Name));
  std::vector<CompoundApplication> Apps = {
      CompoundApplication(Application(KernelKind::MklDgemm, 9000)),
      CompoundApplication(Application(KernelKind::Stream, 20000000)),
      CompoundApplication(Application(KernelKind::QuickSort, 1u << 24))};
  FleetTraceConfig Config;
  Config.NumObservations = NumObservations;
  Config.NumTenants = 41;
  Config.PrototypesPerApp = 3;
  Config.DriftMax = DriftMax;
  return FleetTrace::synthesize(M, Events, Apps, Config);
}

/// Snapshot of everything an online-retrain replay publishes.
struct RetrainResult {
  std::vector<double> Coefficients;
  std::vector<double> TenantEnergy;
  double FleetEnergy = 0;
  double Staleness = 0;
  uint64_t Retrains = 0;
};

/// Replays \p Trace with online retraining (\p Algo) enabled, seeding the
/// model from the head of the stream exactly like bench_serving_engine.
RetrainResult replayRetrain(const FleetTrace &Trace, uint32_t NumTenants,
                            ml::FitAlgorithm Algo, unsigned Shards,
                            size_t EpochSize) {
  std::vector<std::string> Names;
  for (size_t F = 0; F < Trace.width(); ++F)
    Names.push_back("pmc" + std::to_string(F));
  ml::Dataset Seed(Names);
  const size_t SeedRows = std::min<size_t>(512, Trace.size());
  for (size_t I = 0; I < SeedRows; ++I)
    Seed.addRow(Trace.features(I), Trace.label(I));
  ml::RlsLinearRegression Online;
  auto Fit = Online.fit(Seed);
  assert(Fit);
  (void)Fit;

  ServingConfig Config;
  Config.NumShards = Shards;
  Config.EpochSize = EpochSize;
  Config.ScoreLabels = true;
  ServingEngine Engine(Online, Trace.width(), NumTenants, Trace.numApps(),
                       Config);
  Engine.enableOnlineRetrain(Online, Algo, &Seed);
  Engine.replay(Trace);

  RetrainResult R;
  R.Coefficients = Online.coefficients();
  for (uint32_t T = 0; T < NumTenants; ++T)
    R.TenantEnergy.push_back(Engine.tenantEnergy(T));
  R.FleetEnergy = Engine.fleetEnergy();
  R.Staleness = Engine.stats().stalenessError();
  R.Retrains = Engine.stats().Retrains;
  return R;
}

double retrainRelDiff(double A, double B) {
  return A != 0 ? std::fabs(B - A) / std::fabs(A) : std::fabs(B);
}

} // namespace

TEST(ServingEngine, OnlineRetrainBitIdenticalAtAnyShardAndThreadCount) {
  // Staleness scoring and retrain updates are applied serially in trace
  // order at the fold, so the entire online-retrain replay — published
  // coefficients included — is a pure function of the trace: shards and
  // threads trade wall clock only.
  ThreadCountGuard Guard;
  Machine M(Platform::intelSkylakeServer(), 33);
  auto Trace = makeDriftingTrace(M, 3000, /*DriftMax=*/0.3);
  ASSERT_TRUE(bool(Trace));

  ThreadPool::setGlobalThreadCount(1);
  RetrainResult Reference =
      replayRetrain(*Trace, 41, ml::FitAlgorithm::Rls, /*Shards=*/1, 256);
  EXPECT_GT(Reference.Retrains, 0u);

  for (unsigned Shards : {1u, 8u}) {
    for (unsigned Threads : {1u, 4u}) {
      ThreadPool::setGlobalThreadCount(Threads);
      RetrainResult Got =
          replayRetrain(*Trace, 41, ml::FitAlgorithm::Rls, Shards, 256);
      ASSERT_EQ(Got.Coefficients.size(), Reference.Coefficients.size());
      for (size_t C = 0; C < Reference.Coefficients.size(); ++C)
        ASSERT_EQ(Got.Coefficients[C], Reference.Coefficients[C])
            << Shards << " shards, " << Threads << " threads, coef " << C;
      for (uint32_t T = 0; T < 41; ++T)
        ASSERT_EQ(Got.TenantEnergy[T], Reference.TenantEnergy[T])
            << Shards << " shards, " << Threads << " threads, tenant " << T;
      ASSERT_EQ(Got.FleetEnergy, Reference.FleetEnergy);
      ASSERT_EQ(Got.Staleness, Reference.Staleness);
      ASSERT_EQ(Got.Retrains, Reference.Retrains);
    }
  }
}

TEST(ServingEngine, RlsAndRefitRetrainAgreeToSolverPrecision) {
  // Both modes seed from the identical stream head and maintain the same
  // ridge system (refit re-solves seed + all folded epochs), so the
  // published coefficients and the attributions they produce must agree
  // far inside the 1e-4 CI-gate bound.
  Machine M(Platform::intelSkylakeServer(), 35);
  auto Trace = makeDriftingTrace(M, 3000, /*DriftMax=*/0.3);
  ASSERT_TRUE(bool(Trace));

  RetrainResult Rls =
      replayRetrain(*Trace, 41, ml::FitAlgorithm::Rls, 2, 256);
  RetrainResult Refit =
      replayRetrain(*Trace, 41, ml::FitAlgorithm::Refit, 2, 256);

  ASSERT_EQ(Rls.Retrains, Refit.Retrains);
  for (size_t C = 0; C < Rls.Coefficients.size(); ++C)
    EXPECT_LT(retrainRelDiff(Refit.Coefficients[C], Rls.Coefficients[C]),
              1e-8)
        << "coef " << C;
  for (uint32_t T = 0; T < 41; ++T)
    EXPECT_LT(retrainRelDiff(Refit.TenantEnergy[T], Rls.TenantEnergy[T]),
              1e-8)
        << "tenant " << T;
  EXPECT_LT(retrainRelDiff(Refit.FleetEnergy, Rls.FleetEnergy), 1e-8);
  EXPECT_LT(retrainRelDiff(Refit.Staleness, Rls.Staleness), 1e-6);
}

TEST(ServingEngine, OnlineRetrainTracksDriftBetterThanFrozenModel) {
  // The accuracy claim behind the whole subsystem: on a drifting
  // workload, continuously retrained predictions carry a lower
  // prediction-weighted staleness error than the epoch-0 frozen model.
  Machine M(Platform::intelSkylakeServer(), 37);
  auto Trace = makeDriftingTrace(M, 4000, /*DriftMax=*/0.5);
  ASSERT_TRUE(bool(Trace));

  // Frozen baseline: same seeded model, label scoring on, no retraining.
  std::vector<std::string> Names;
  for (size_t F = 0; F < Trace->width(); ++F)
    Names.push_back("pmc" + std::to_string(F));
  ml::Dataset Seed(Names);
  for (size_t I = 0; I < 512; ++I)
    Seed.addRow(Trace->features(I), Trace->label(I));
  ml::RlsLinearRegression Frozen;
  ASSERT_TRUE(bool(Frozen.fit(Seed)));
  ServingConfig Config;
  Config.NumShards = 2;
  Config.EpochSize = 256;
  Config.ScoreLabels = true;
  ServingEngine FrozenEngine(Frozen, Trace->width(), 41, Trace->numApps(),
                             Config);
  FrozenEngine.replay(*Trace);
  EXPECT_EQ(FrozenEngine.stats().Retrains, 0u);
  const double FrozenStaleness = FrozenEngine.stats().stalenessError();

  RetrainResult Online =
      replayRetrain(*Trace, 41, ml::FitAlgorithm::Rls, 2, 256);
  EXPECT_GT(Online.Retrains, 0u);
  EXPECT_GT(FrozenStaleness, 0.0);
  EXPECT_LT(Online.Staleness, FrozenStaleness);
}

TEST(FleetTrace, DriftScalesLabelsButNeverFeatures) {
  // Label drift rides a separate fork of the noise stream: turning it on
  // (or off) must leave every feature value bit-identical, so drifting
  // and non-drifting runs share the identical serving workload.
  Machine M1(Platform::intelSkylakeServer(), 39);
  Machine M2(Platform::intelSkylakeServer(), 39);
  auto Flat = makeDriftingTrace(M1, 1500, /*DriftMax=*/0.0);
  auto Drifting = makeDriftingTrace(M2, 1500, /*DriftMax=*/0.4);
  ASSERT_TRUE(bool(Flat));
  ASSERT_TRUE(bool(Drifting));

  double MaxLabelRel = 0;
  for (size_t I = 0; I < Flat->size(); ++I) {
    ASSERT_EQ(Flat->tenant(I), Drifting->tenant(I));
    ASSERT_EQ(Flat->app(I), Drifting->app(I));
    for (size_t F = 0; F < Flat->width(); ++F)
      ASSERT_EQ(Flat->features(I)[F], Drifting->features(I)[F])
          << "observation " << I;
    ASSERT_GT(Flat->label(I), 0.0);
    MaxLabelRel = std::max(
        MaxLabelRel, std::fabs(Drifting->label(I) - Flat->label(I)) /
                         Flat->label(I));
  }
  // The drift itself must be visible in the labels (up to 40% here).
  EXPECT_GT(MaxLabelRel, 0.05);
  EXPECT_LT(MaxLabelRel, 0.45);
}
