//===- tests/pmc/PerformanceGroupsTest.cpp - Preset group tests -----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "pmc/PerformanceGroups.h"

#include "pmc/CounterScheduler.h"
#include "pmc/PlatformEvents.h"

#include <algorithm>

#include <gtest/gtest.h>

#include <set>

using namespace slope;
using namespace slope::pmc;

namespace {
struct PlatformGroups {
  const char *Label;
  EventRegistry Registry;
  std::vector<PerformanceGroup> Groups;
};

std::vector<PlatformGroups> allPlatformGroups() {
  std::vector<PlatformGroups> Out;
  Out.push_back(
      {"haswell", buildHaswellRegistry(), haswellPerformanceGroups()});
  Out.push_back(
      {"skylake", buildSkylakeRegistry(), skylakePerformanceGroups()});
  return Out;
}
} // namespace

TEST(PerformanceGroups, EveryEventExistsInItsRegistry) {
  for (const PlatformGroups &P : allPlatformGroups())
    for (const PerformanceGroup &Group : P.Groups) {
      auto Ids = resolveGroup(P.Registry, Group);
      EXPECT_TRUE(bool(Ids)) << P.Label << "/" << Group.Name << ": "
                             << (Ids ? "" : Ids.error().message());
    }
}

TEST(PerformanceGroups, EveryGroupFitsOneCollectionRun) {
  // The defining property of a likwid preset: one measurement pass.
  for (const PlatformGroups &P : allPlatformGroups())
    for (const PerformanceGroup &Group : P.Groups) {
      auto Ids = resolveGroup(P.Registry, Group);
      ASSERT_TRUE(bool(Ids));
      auto Plan = planCollection(P.Registry, *Ids);
      ASSERT_TRUE(bool(Plan)) << P.Label << "/" << Group.Name;
      EXPECT_EQ(Plan->numRuns(), 1u) << P.Label << "/" << Group.Name;
    }
}

TEST(PerformanceGroups, NamesAreUniquePerPlatform) {
  for (const PlatformGroups &P : allPlatformGroups()) {
    std::set<std::string> Names;
    for (const PerformanceGroup &Group : P.Groups)
      EXPECT_TRUE(Names.insert(Group.Name).second)
          << P.Label << "/" << Group.Name;
  }
}

TEST(PerformanceGroups, NoGroupIsEmptyOrOversized) {
  for (const PlatformGroups &P : allPlatformGroups())
    for (const PerformanceGroup &Group : P.Groups) {
      EXPECT_GE(Group.EventNames.size(), 2u) << Group.Name;
      EXPECT_LE(Group.EventNames.size(), 4u) << Group.Name;
      EXPECT_FALSE(Group.Description.empty()) << Group.Name;
    }
}

TEST(PerformanceGroups, FindGroupByName) {
  auto Group = findGroup(skylakePerformanceGroups(), "PA4");
  ASSERT_TRUE(bool(Group));
  EXPECT_EQ(Group->EventNames.size(), 4u);
}

TEST(PerformanceGroups, FindGroupListsAvailableOnMiss) {
  auto Group = findGroup(haswellPerformanceGroups(), "NOPE");
  ASSERT_FALSE(bool(Group));
  EXPECT_NE(Group.error().message().find("FLOPS_DP"), std::string::npos);
}

TEST(PerformanceGroups, SkylakePa4MatchesPaperSubsetShape) {
  auto Group = findGroup(skylakePerformanceGroups(), "PA4");
  ASSERT_TRUE(bool(Group));
  // All four members come from the paper's PA set.
  std::vector<std::string> Pa = skylakePaNames();
  for (const std::string &Name : Group->EventNames)
    EXPECT_NE(std::find(Pa.begin(), Pa.end(), Name), Pa.end()) << Name;
}
