//===- tests/pmc/CounterSchedulerTest.cpp - Scheduler tests --------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "pmc/CounterScheduler.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::pmc;

namespace {
/// Builds a registry with the given number of events per constraint.
EventRegistry makeRegistry(size_t Fixed, size_t Solo, size_t Pair,
                           size_t Triple, size_t General) {
  EventRegistry R;
  auto Add = [&R](const std::string &Prefix, size_t Count,
                  CounterConstraintKind Kind) {
    for (size_t I = 0; I < Count; ++I) {
      EventDef Def;
      Def.Name = Prefix + std::to_string(I);
      Def.Constraint = Kind;
      Def.Model.Coeffs.push_back({ActivityKind::Loads, 1.0});
      R.addEvent(std::move(Def));
    }
  };
  Add("FIX", Fixed, CounterConstraintKind::Fixed);
  Add("SOLO", Solo, CounterConstraintKind::Solo);
  Add("PAIR", Pair, CounterConstraintKind::PairOnly);
  Add("TRI", Triple, CounterConstraintKind::TripleOnly);
  Add("GEN", General, CounterConstraintKind::AnyProgrammable);
  return R;
}
} // namespace

TEST(CounterScheduler, FourGeneralEventsFitOneRun) {
  EventRegistry R = makeRegistry(0, 0, 0, 0, 4);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 1u);
}

TEST(CounterScheduler, FiveGeneralEventsNeedTwoRuns) {
  EventRegistry R = makeRegistry(0, 0, 0, 0, 5);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 2u);
}

TEST(CounterScheduler, SoloEventsGetSingletonRuns) {
  EventRegistry R = makeRegistry(0, 3, 0, 0, 0);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 3u);
  for (const CollectionRun &Run : Plan->Runs)
    EXPECT_EQ(Run.Events.size(), 1u);
}

TEST(CounterScheduler, PairAndTripleWidths) {
  EventRegistry R = makeRegistry(0, 0, 5, 7, 0);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  // ceil(5/2) + ceil(7/3) = 3 + 3.
  EXPECT_EQ(Plan->numRuns(), 6u);
}

TEST(CounterScheduler, FixedEventsRideAlong) {
  EventRegistry R = makeRegistry(3, 0, 0, 0, 4);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 1u); // All 3 fixed + 4 general in one run.
}

TEST(CounterScheduler, FixedOnlyRequestStillNeedsOneRun) {
  EventRegistry R = makeRegistry(2, 0, 0, 0, 0);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 1u);
}

TEST(CounterScheduler, ManyFixedSpillAcrossRuns) {
  // 5 fixed counters but only 3 fixed registers: needs 2 runs.
  EventRegistry R = makeRegistry(5, 0, 0, 0, 0);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 2u);
}

TEST(CounterScheduler, PlanCoversEveryRequestedEventOnce) {
  EventRegistry R = makeRegistry(3, 2, 5, 4, 13);
  std::vector<EventId> Request = R.allEvents();
  auto Plan = planCollection(R, Request);
  ASSERT_TRUE(bool(Plan));
  EXPECT_TRUE(Plan->covers(Request));
}

TEST(CounterScheduler, EveryPlannedRunIsFeasible) {
  EventRegistry R = makeRegistry(3, 2, 5, 4, 13);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  for (const CollectionRun &Run : Plan->Runs)
    EXPECT_TRUE(isFeasibleRun(R, Run));
}

TEST(CounterScheduler, RejectsDuplicateRequest) {
  EventRegistry R = makeRegistry(0, 0, 0, 0, 2);
  auto Plan = planCollection(R, {0, 1, 0});
  ASSERT_FALSE(bool(Plan));
  EXPECT_NE(Plan.error().message().find("duplicate"), std::string::npos);
}

TEST(CounterScheduler, EmptyRequestYieldsEmptyPlan) {
  EventRegistry R = makeRegistry(0, 0, 0, 0, 2);
  auto Plan = planCollection(R, {});
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 0u);
}

TEST(CounterScheduler, SubsetRequestOnlyCoversSubset) {
  EventRegistry R = makeRegistry(0, 0, 0, 0, 8);
  std::vector<EventId> Subset = {1, 3, 5};
  auto Plan = planCollection(R, Subset);
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 1u);
  EXPECT_TRUE(Plan->covers(Subset));
  EXPECT_FALSE(Plan->covers(R.allEvents()));
}

TEST(IsFeasibleRun, RejectsOverfullRun) {
  EventRegistry R = makeRegistry(0, 0, 0, 0, 5);
  CollectionRun Run;
  Run.Events = R.allEvents(); // 5 general events > 4 registers.
  EXPECT_FALSE(isFeasibleRun(R, Run));
}

TEST(IsFeasibleRun, RejectsSoloSharing) {
  EventRegistry R = makeRegistry(0, 1, 0, 0, 1);
  CollectionRun Run;
  Run.Events = R.allEvents();
  EXPECT_FALSE(isFeasibleRun(R, Run));
}

TEST(IsFeasibleRun, PairClassCapsRunAtTwo) {
  EventRegistry R = makeRegistry(0, 0, 1, 0, 2);
  CollectionRun Run;
  Run.Events = R.allEvents(); // One pair-class + two general = 3 > 2.
  EXPECT_FALSE(isFeasibleRun(R, Run));
}

// Property: for random constraint mixes the plan covers the request with
// only feasible runs, and run count matches the closed-form bound.
class SchedulerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerProperty, CoverageFeasibilityAndCount) {
  Rng Random(GetParam());
  size_t Fixed = Random.below(4);
  size_t Solo = Random.below(6);
  size_t Pair = Random.below(10);
  size_t Triple = Random.below(10);
  size_t General = Random.below(40);
  EventRegistry R = makeRegistry(Fixed, Solo, Pair, Triple, General);
  std::vector<EventId> Request = R.allEvents();
  if (Request.empty())
    return;
  auto Plan = planCollection(R, Request);
  ASSERT_TRUE(bool(Plan));
  EXPECT_TRUE(Plan->covers(Request));
  for (const CollectionRun &Run : Plan->Runs)
    EXPECT_TRUE(isFeasibleRun(R, Run));
  size_t Expected = Solo + (Pair + 1) / 2 + (Triple + 2) / 3 +
                    (General + 3) / 4;
  size_t FixedRuns = (Fixed + 2) / 3;
  EXPECT_EQ(Plan->numRuns(), std::max(Expected, Expected == 0 ? FixedRuns
                                                              : Expected));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Range<uint64_t>(0, 20));
