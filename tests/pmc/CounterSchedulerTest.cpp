//===- tests/pmc/CounterSchedulerTest.cpp - Scheduler tests --------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "pmc/CounterScheduler.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::pmc;

namespace {
/// Builds a registry with the given number of events per constraint.
EventRegistry makeRegistry(size_t Fixed, size_t Solo, size_t Pair,
                           size_t Triple, size_t General) {
  EventRegistry R;
  auto Add = [&R](const std::string &Prefix, size_t Count,
                  CounterConstraintKind Kind) {
    for (size_t I = 0; I < Count; ++I) {
      EventDef Def;
      Def.Name = Prefix + std::to_string(I);
      Def.Constraint = Kind;
      Def.Model.Coeffs.push_back({ActivityKind::Loads, 1.0});
      R.addEvent(std::move(Def));
    }
  };
  Add("FIX", Fixed, CounterConstraintKind::Fixed);
  Add("SOLO", Solo, CounterConstraintKind::Solo);
  Add("PAIR", Pair, CounterConstraintKind::PairOnly);
  Add("TRI", Triple, CounterConstraintKind::TripleOnly);
  Add("GEN", General, CounterConstraintKind::AnyProgrammable);
  return R;
}
} // namespace

TEST(CounterScheduler, FourGeneralEventsFitOneRun) {
  EventRegistry R = makeRegistry(0, 0, 0, 0, 4);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 1u);
}

TEST(CounterScheduler, FiveGeneralEventsNeedTwoRuns) {
  EventRegistry R = makeRegistry(0, 0, 0, 0, 5);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 2u);
}

TEST(CounterScheduler, SoloEventsGetSingletonRuns) {
  EventRegistry R = makeRegistry(0, 3, 0, 0, 0);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 3u);
  for (const CollectionRun &Run : Plan->Runs)
    EXPECT_EQ(Run.Events.size(), 1u);
}

TEST(CounterScheduler, PairAndTripleWidths) {
  EventRegistry R = makeRegistry(0, 0, 5, 7, 0);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  // ceil(5/2) + ceil(7/3) = 3 + 3.
  EXPECT_EQ(Plan->numRuns(), 6u);
}

TEST(CounterScheduler, FixedEventsRideAlong) {
  EventRegistry R = makeRegistry(3, 0, 0, 0, 4);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 1u); // All 3 fixed + 4 general in one run.
}

TEST(CounterScheduler, FixedOnlyRequestStillNeedsOneRun) {
  EventRegistry R = makeRegistry(2, 0, 0, 0, 0);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 1u);
}

TEST(CounterScheduler, ManyFixedSpillAcrossRuns) {
  // 5 fixed counters but only 3 fixed registers: needs 2 runs.
  EventRegistry R = makeRegistry(5, 0, 0, 0, 0);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 2u);
}

TEST(CounterScheduler, PlanCoversEveryRequestedEventOnce) {
  EventRegistry R = makeRegistry(3, 2, 5, 4, 13);
  std::vector<EventId> Request = R.allEvents();
  auto Plan = planCollection(R, Request);
  ASSERT_TRUE(bool(Plan));
  EXPECT_TRUE(Plan->covers(Request));
}

TEST(CounterScheduler, EveryPlannedRunIsFeasible) {
  EventRegistry R = makeRegistry(3, 2, 5, 4, 13);
  auto Plan = planCollection(R, R.allEvents());
  ASSERT_TRUE(bool(Plan));
  for (const CollectionRun &Run : Plan->Runs)
    EXPECT_TRUE(isFeasibleRun(R, Run));
}

TEST(CounterScheduler, RejectsDuplicateRequest) {
  EventRegistry R = makeRegistry(0, 0, 0, 0, 2);
  auto Plan = planCollection(R, {0, 1, 0});
  ASSERT_FALSE(bool(Plan));
  EXPECT_NE(Plan.error().message().find("duplicate"), std::string::npos);
}

TEST(CounterScheduler, EmptyRequestYieldsEmptyPlan) {
  EventRegistry R = makeRegistry(0, 0, 0, 0, 2);
  auto Plan = planCollection(R, {});
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 0u);
}

TEST(CounterScheduler, SubsetRequestOnlyCoversSubset) {
  EventRegistry R = makeRegistry(0, 0, 0, 0, 8);
  std::vector<EventId> Subset = {1, 3, 5};
  auto Plan = planCollection(R, Subset);
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 1u);
  EXPECT_TRUE(Plan->covers(Subset));
  EXPECT_FALSE(Plan->covers(R.allEvents()));
}

TEST(IsFeasibleRun, RejectsOverfullRun) {
  EventRegistry R = makeRegistry(0, 0, 0, 0, 5);
  CollectionRun Run;
  Run.Events = R.allEvents(); // 5 general events > 4 registers.
  EXPECT_FALSE(isFeasibleRun(R, Run));
}

TEST(IsFeasibleRun, RejectsSoloSharing) {
  EventRegistry R = makeRegistry(0, 1, 0, 0, 1);
  CollectionRun Run;
  Run.Events = R.allEvents();
  EXPECT_FALSE(isFeasibleRun(R, Run));
}

TEST(IsFeasibleRun, PairClassCapsRunAtTwo) {
  EventRegistry R = makeRegistry(0, 0, 1, 0, 2);
  CollectionRun Run;
  Run.Events = R.allEvents(); // One pair-class + two general = 3 > 2.
  EXPECT_FALSE(isFeasibleRun(R, Run));
}

// Property: for random constraint mixes the plan covers the request with
// only feasible runs, and run count matches the closed-form bound.
class SchedulerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerProperty, CoverageFeasibilityAndCount) {
  Rng Random(GetParam());
  size_t Fixed = Random.below(4);
  size_t Solo = Random.below(6);
  size_t Pair = Random.below(10);
  size_t Triple = Random.below(10);
  size_t General = Random.below(40);
  EventRegistry R = makeRegistry(Fixed, Solo, Pair, Triple, General);
  std::vector<EventId> Request = R.allEvents();
  if (Request.empty())
    return;
  auto Plan = planCollection(R, Request);
  ASSERT_TRUE(bool(Plan));
  EXPECT_TRUE(Plan->covers(Request));
  for (const CollectionRun &Run : Plan->Runs)
    EXPECT_TRUE(isFeasibleRun(R, Run));
  size_t Expected = Solo + (Pair + 1) / 2 + (Triple + 2) / 3 +
                    (General + 3) / 4;
  size_t FixedRuns = (Fixed + 2) / 3;
  EXPECT_EQ(Plan->numRuns(), std::max(Expected, Expected == 0 ? FixedRuns
                                                              : Expected));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Range<uint64_t>(0, 20));

namespace {
/// An AMD-flavoured PMU: PerfEvtSel-style general-purpose slots only, no
/// fixed-counter set.
PmuSpec amdPmu() {
  PmuSpec Pmu;
  Pmu.NumProgrammable = 4;
  Pmu.NumFixed = 0;
  return Pmu;
}

/// Adds one general-purpose event with a PerfEvtSel-style slot mask.
EventId addMasked(EventRegistry &R, const std::string &Name,
                  uint8_t SlotMask) {
  EventDef Def;
  Def.Name = Name;
  Def.Constraint = CounterConstraintKind::AnyProgrammable;
  Def.SlotMask = SlotMask;
  Def.Model.Coeffs.push_back({ActivityKind::Loads, 1.0});
  return R.addEvent(std::move(Def));
}
} // namespace

TEST(AmdSlotConstraints, FixedEventRejectedWithoutFixedCounters) {
  EventRegistry R = makeRegistry(1, 0, 0, 0, 2);
  auto Plan = planCollection(R, R.allEvents(), amdPmu());
  ASSERT_FALSE(bool(Plan));
  EXPECT_NE(Plan.error().message().find("needs a fixed counter"),
            std::string::npos);
}

TEST(AmdSlotConstraints, MaskOutsideBudgetRejected) {
  EventRegistry R;
  addMasked(R, "HIGH_SLOT_ONLY", 0x10); // Slot 4 on a 4-slot PMU.
  auto Plan = planCollection(R, R.allEvents(), amdPmu());
  ASSERT_FALSE(bool(Plan));
  EXPECT_NE(Plan.error().message().find("cannot be counted"),
            std::string::npos);
}

TEST(AmdSlotConstraints, ConflictingSingleSlotEventsSplitRuns) {
  EventRegistry R;
  addMasked(R, "DIV_A", 0x8); // Both pinned to slot 3 -> can't share.
  addMasked(R, "DIV_B", 0x8);
  auto Plan = planCollection(R, R.allEvents(), amdPmu());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 2u);
  EXPECT_TRUE(Plan->covers(R.allEvents()));
}

TEST(AmdSlotConstraints, DisjointMasksShareOneRun) {
  EventRegistry R;
  addMasked(R, "FP0", 0x1);
  addMasked(R, "FP1", 0x2);
  addMasked(R, "FP2", 0x4);
  addMasked(R, "FP3", 0x8);
  auto Plan = planCollection(R, R.allEvents(), amdPmu());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 1u);
}

TEST(AmdSlotConstraints, RestrictedRunFeasibilityIsExact) {
  // Three events all restricted to slots {0,1}: any two fit, three can't.
  EventRegistry R;
  addMasked(R, "A", 0x3);
  addMasked(R, "B", 0x3);
  addMasked(R, "C", 0x3);
  CollectionRun Two;
  Two.Events = {0, 1};
  EXPECT_TRUE(isFeasibleRun(R, Two, amdPmu()));
  CollectionRun Three;
  Three.Events = {0, 1, 2};
  EXPECT_FALSE(isFeasibleRun(R, Three, amdPmu()));
  auto Plan = planCollection(R, R.allEvents(), amdPmu());
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 2u);
}

TEST(AmdSlotConstraints, Zen2RegistryPlansFullCatalogue) {
  EventRegistry R = buildAmdZen2Registry();
  std::vector<EventId> Request = R.allEvents();
  auto Plan = planCollection(R, Request, amdPmu());
  ASSERT_TRUE(bool(Plan));
  EXPECT_TRUE(Plan->covers(Request));
  for (const CollectionRun &Run : Plan->Runs) {
    EXPECT_TRUE(isFeasibleRun(R, Run, amdPmu()));
    EXPECT_LE(Run.Events.size(), 4u); // No fixed ride-alongs exist.
  }
}

// Property: random slot-mask mixes on an AMD-style PMU still produce
// covering plans of feasible runs, and planning is a pure function of
// the registry order (bit-identical on re-run).
class AmdSlotProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AmdSlotProperty, CoverageFeasibilityAndDeterminism) {
  Rng Random(GetParam());
  EventRegistry R;
  size_t NumEvents = 1 + Random.below(24);
  for (size_t I = 0; I < NumEvents; ++I) {
    // Masks biased toward unrestricted with a sprinkling of 1- and
    // 2-slot restrictions, like real PerfEvtSel tables.
    uint8_t Mask = 0xFF;
    switch (Random.below(4)) {
    case 0:
      Mask = static_cast<uint8_t>(1u << Random.below(4));
      break;
    case 1:
      Mask = static_cast<uint8_t>((1u << Random.below(4)) |
                                  (1u << Random.below(4)));
      break;
    default:
      break;
    }
    addMasked(R, "E" + std::to_string(I), Mask);
  }
  std::vector<EventId> Request = R.allEvents();
  auto Plan = planCollection(R, Request, amdPmu());
  ASSERT_TRUE(bool(Plan));
  EXPECT_TRUE(Plan->covers(Request));
  for (const CollectionRun &Run : Plan->Runs)
    EXPECT_TRUE(isFeasibleRun(R, Run, amdPmu()));
  auto Again = planCollection(R, Request, amdPmu());
  ASSERT_TRUE(bool(Again));
  ASSERT_EQ(Plan->numRuns(), Again->numRuns());
  for (size_t I = 0; I < Plan->Runs.size(); ++I)
    EXPECT_EQ(Plan->Runs[I].Events, Again->Runs[I].Events);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AmdSlotProperty,
                         ::testing::Range<uint64_t>(100, 120));
