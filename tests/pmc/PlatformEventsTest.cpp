//===- tests/pmc/PlatformEventsTest.cpp - Registry catalogue tests -------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Verifies the platform catalogues reproduce the paper's Sect. 5 numbers:
// 164 events / 151 significant / 53 collection runs on Haswell and
// 385 / 323 / 99 on Skylake, and that the named PMC selections exist with
// the right characteristics.
//
//===----------------------------------------------------------------------===//

#include "pmc/PlatformEvents.h"

#include "pmc/CounterScheduler.h"
#include "pmc/EventRegistry.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::pmc;

namespace {
/// Events with a non-empty synthesis mapping (the "significant" set that
/// survives the paper's counts-greater-than-10 filter).
std::vector<EventId> significantEvents(const EventRegistry &R) {
  std::vector<EventId> Ids;
  for (EventId Id : R.allEvents())
    if (!R.event(Id).Model.Coeffs.empty())
      Ids.push_back(Id);
  return Ids;
}
} // namespace

TEST(HaswellRegistry, Offers164Events) {
  EXPECT_EQ(buildHaswellRegistry().size(), 164u);
}

TEST(HaswellRegistry, Has151SignificantEvents) {
  EventRegistry R = buildHaswellRegistry();
  EXPECT_EQ(significantEvents(R).size(), 151u);
}

TEST(HaswellRegistry, FullCollectionTakes53Runs) {
  EventRegistry R = buildHaswellRegistry();
  auto Plan = planCollection(R, significantEvents(R));
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 53u); // Paper Sect. 5: "about 53 times".
}

TEST(HaswellRegistry, HasThreeFixedCounters) {
  EventRegistry R = buildHaswellRegistry();
  EXPECT_EQ(R.countByConstraint(CounterConstraintKind::Fixed), 3u);
  EXPECT_TRUE(R.hasEvent("INSTR_RETIRED_ANY"));
  EXPECT_TRUE(R.hasEvent("CPU_CLK_UNHALTED_CORE"));
  EXPECT_TRUE(R.hasEvent("CPU_CLK_UNHALTED_REF"));
}

TEST(HaswellRegistry, ContainsTheSixClassAPmcs) {
  EventRegistry R = buildHaswellRegistry();
  for (const std::string &Name : haswellClassAPmcNames())
    EXPECT_TRUE(R.hasEvent(Name)) << Name;
  EXPECT_EQ(haswellClassAPmcNames().size(), 6u);
}

TEST(HaswellRegistry, ClassAPmcsFitInTwoCollectionRuns) {
  // All six are AnyProgrammable: ceil(6/4) == 2 runs, matching the
  // paper's premise that the set is collectable in two runs.
  EventRegistry R = buildHaswellRegistry();
  std::vector<EventId> Ids;
  for (const std::string &Name : haswellClassAPmcNames())
    Ids.push_back(*R.lookup(Name));
  auto Plan = planCollection(R, Ids);
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 2u);
}

TEST(HaswellRegistry, DividerEventIsMostContextDominated) {
  EventRegistry R = buildHaswellRegistry();
  const EventDef &Div = R.event(*R.lookup("ARITH_DIVIDER_COUNT"));
  const EventDef &Port6 = R.event(*R.lookup("UOPS_EXECUTED_PORT_PORT_6"));
  EXPECT_GT(Div.Model.NaFraction, Port6.Model.NaFraction);
}

TEST(HaswellRegistry, DeterministicConstruction) {
  EventRegistry A = buildHaswellRegistry();
  EventRegistry B = buildHaswellRegistry();
  ASSERT_EQ(A.size(), B.size());
  for (EventId Id : A.allEvents()) {
    EXPECT_EQ(A.event(Id).Name, B.event(Id).Name);
    EXPECT_EQ(A.event(Id).Model.NaFraction, B.event(Id).Model.NaFraction);
  }
}

TEST(SkylakeRegistry, Offers385Events) {
  EXPECT_EQ(buildSkylakeRegistry().size(), 385u);
}

TEST(SkylakeRegistry, Has323SignificantEvents) {
  EventRegistry R = buildSkylakeRegistry();
  EXPECT_EQ(significantEvents(R).size(), 323u);
}

TEST(SkylakeRegistry, FullCollectionTakes99Runs) {
  EventRegistry R = buildSkylakeRegistry();
  auto Plan = planCollection(R, significantEvents(R));
  ASSERT_TRUE(bool(Plan));
  EXPECT_EQ(Plan->numRuns(), 99u); // Paper Sect. 5: "about 99 times".
}

TEST(SkylakeRegistry, ContainsPaAndPnaSets) {
  EventRegistry R = buildSkylakeRegistry();
  for (const std::string &Name : skylakePaNames())
    EXPECT_TRUE(R.hasEvent(Name)) << Name;
  for (const std::string &Name : skylakePnaNames())
    EXPECT_TRUE(R.hasEvent(Name)) << Name;
  EXPECT_EQ(skylakePaNames().size(), 9u);
  EXPECT_EQ(skylakePnaNames().size(), 9u);
}

TEST(SkylakeRegistry, PaSetIsCleanerThanPnaSet) {
  // By construction PA events have IntensityFloor 0 (context vanishes
  // for low-intensity kernels like MKL DGEMM/FFT) while PNA events carry
  // self-generated context.
  EventRegistry R = buildSkylakeRegistry();
  for (const std::string &Name : skylakePaNames()) {
    const EventDef &Def = R.event(*R.lookup(Name));
    EXPECT_EQ(Def.Model.IntensityFloor, 0.0) << Name;
  }
  for (const std::string &Name : skylakePnaNames()) {
    const EventDef &Def = R.event(*R.lookup(Name));
    EXPECT_GE(Def.Model.IntensityFloor, 0.5) << Name;
  }
}

TEST(SkylakeRegistry, PaAndPnaAreDisjoint) {
  for (const std::string &Pa : skylakePaNames())
    for (const std::string &Pna : skylakePnaNames())
      EXPECT_NE(Pa, Pna);
}

TEST(SkylakeRegistry, SharedEventNamesAcrossPlatforms) {
  // Events the paper references on both machines exist in both
  // registries (e.g. IDQ_MS_UOPS, ARITH_DIVIDER_COUNT,
  // ICACHE_64B_IFTAG_MISS).
  EventRegistry H = buildHaswellRegistry();
  EventRegistry S = buildSkylakeRegistry();
  for (const char *Name :
       {"IDQ_MS_UOPS", "ARITH_DIVIDER_COUNT", "ICACHE_64B_IFTAG_MISS"}) {
    EXPECT_TRUE(H.hasEvent(Name)) << Name;
    EXPECT_TRUE(S.hasEvent(Name)) << Name;
  }
}

TEST(Registries, InsignificantEventsHaveNoMapping) {
  EventRegistry R = buildHaswellRegistry();
  size_t Insignificant = 0;
  for (EventId Id : R.allEvents()) {
    const EventDef &Def = R.event(Id);
    if (Def.Model.Coeffs.empty()) {
      ++Insignificant;
      EXPECT_LE(Def.Model.ContextFloor, 10.0) << Def.Name;
    }
  }
  EXPECT_EQ(Insignificant, 13u); // 164 - 151.
}
