//===- tests/pmc/EventRegistryTest.cpp - Event registry tests -------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "pmc/EventRegistry.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::pmc;

namespace {
EventDef makeEvent(const std::string &Name,
                   CounterConstraintKind Constraint =
                       CounterConstraintKind::AnyProgrammable) {
  EventDef Def;
  Def.Name = Name;
  Def.Constraint = Constraint;
  Def.Model.Coeffs.push_back({ActivityKind::Loads, 1.0});
  return Def;
}
} // namespace

TEST(EventRegistry, AddAndLookup) {
  EventRegistry R;
  EventId Id = R.addEvent(makeEvent("L2_RQSTS_MISS"));
  auto Found = R.lookup("L2_RQSTS_MISS");
  ASSERT_TRUE(bool(Found));
  EXPECT_EQ(*Found, Id);
  EXPECT_EQ(R.event(Id).Name, "L2_RQSTS_MISS");
}

TEST(EventRegistry, LookupUnknownFails) {
  EventRegistry R;
  auto Found = R.lookup("NO_SUCH_EVENT");
  ASSERT_FALSE(bool(Found));
  EXPECT_NE(Found.error().message().find("NO_SUCH_EVENT"),
            std::string::npos);
}

TEST(EventRegistry, HasEvent) {
  EventRegistry R;
  R.addEvent(makeEvent("A"));
  EXPECT_TRUE(R.hasEvent("A"));
  EXPECT_FALSE(R.hasEvent("B"));
}

TEST(EventRegistry, AllEventsEnumeratesInOrder) {
  EventRegistry R;
  R.addEvent(makeEvent("A"));
  R.addEvent(makeEvent("B"));
  std::vector<EventId> Ids = R.allEvents();
  ASSERT_EQ(Ids.size(), 2u);
  EXPECT_EQ(Ids[0], 0u);
  EXPECT_EQ(Ids[1], 1u);
}

TEST(EventRegistry, FindByNameConjunction) {
  EventRegistry R;
  R.addEvent(makeEvent("IDQ_MS_UOPS"));
  R.addEvent(makeEvent("IDQ_MITE_UOPS"));
  R.addEvent(makeEvent("L2_RQSTS_MISS"));
  EXPECT_EQ(R.findByName({"IDQ"}).size(), 2u);
  EXPECT_EQ(R.findByName({"IDQ", "MITE"}).size(), 1u);
  EXPECT_EQ(R.findByName({"XYZZY"}).size(), 0u);
}

TEST(EventRegistry, CountByConstraint) {
  EventRegistry R;
  R.addEvent(makeEvent("A", CounterConstraintKind::Solo));
  R.addEvent(makeEvent("B", CounterConstraintKind::Solo));
  R.addEvent(makeEvent("C", CounterConstraintKind::PairOnly));
  EXPECT_EQ(R.countByConstraint(CounterConstraintKind::Solo), 2u);
  EXPECT_EQ(R.countByConstraint(CounterConstraintKind::PairOnly), 1u);
  EXPECT_EQ(R.countByConstraint(CounterConstraintKind::Fixed), 0u);
}

TEST(EventRegistryDeath, DuplicateNameAsserts) {
  EventRegistry R;
  R.addEvent(makeEvent("DUP"));
  EXPECT_DEATH(R.addEvent(makeEvent("DUP")), "duplicate");
}

TEST(EventDef, AdditivityOracle) {
  EventDef Clean = makeEvent("CLEAN");
  EXPECT_TRUE(Clean.isAdditiveByConstruction());
  EventDef Contextual = makeEvent("CTX");
  Contextual.Model.NaFraction = 0.3;
  EXPECT_FALSE(Contextual.isAdditiveByConstruction());
  EventDef Floored = makeEvent("FLOOR");
  Floored.Model.ContextFloor = 100;
  EXPECT_FALSE(Floored.isAdditiveByConstruction());
}

TEST(CounterConstraint, MaxPerRunValues) {
  EXPECT_EQ(maxPerRun(CounterConstraintKind::AnyProgrammable), 4u);
  EXPECT_EQ(maxPerRun(CounterConstraintKind::TripleOnly), 3u);
  EXPECT_EQ(maxPerRun(CounterConstraintKind::PairOnly), 2u);
  EXPECT_EQ(maxPerRun(CounterConstraintKind::Solo), 1u);
}

TEST(CounterConstraint, Names) {
  EXPECT_STREQ(counterConstraintName(CounterConstraintKind::Fixed), "fixed");
  EXPECT_STREQ(counterConstraintName(CounterConstraintKind::Solo), "solo");
}
