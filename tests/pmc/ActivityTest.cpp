//===- tests/pmc/ActivityTest.cpp - ActivityVector tests -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "pmc/Activity.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace slope;
using namespace slope::pmc;

TEST(ActivityVector, DefaultIsZero) {
  ActivityVector A;
  EXPECT_DOUBLE_EQ(A.total(), 0.0);
  EXPECT_DOUBLE_EQ(A[ActivityKind::Loads], 0.0);
}

TEST(ActivityVector, IndexedReadWrite) {
  ActivityVector A;
  A[ActivityKind::FpVectorDouble] = 1e12;
  EXPECT_DOUBLE_EQ(A[ActivityKind::FpVectorDouble], 1e12);
  EXPECT_DOUBLE_EQ(A.at(static_cast<size_t>(ActivityKind::FpVectorDouble)),
                   1e12);
}

TEST(ActivityVector, AdditionIsElementwise) {
  ActivityVector A, B;
  A[ActivityKind::Loads] = 10;
  A[ActivityKind::Stores] = 3;
  B[ActivityKind::Loads] = 5;
  ActivityVector C = A + B;
  EXPECT_DOUBLE_EQ(C[ActivityKind::Loads], 15);
  EXPECT_DOUBLE_EQ(C[ActivityKind::Stores], 3);
}

TEST(ActivityVector, AdditionIsExactlyAssociativeOnCounts) {
  // The physical-additivity backbone: serial composition sums latent
  // activities exactly.
  ActivityVector A, B, C;
  A[ActivityKind::DivOps] = 1024;
  B[ActivityKind::DivOps] = 4096;
  C[ActivityKind::DivOps] = 65536;
  ActivityVector Left = (A + B) + C;
  ActivityVector Right = A + (B + C);
  EXPECT_DOUBLE_EQ(Left[ActivityKind::DivOps],
                   Right[ActivityKind::DivOps]);
}

TEST(ActivityVector, ScalingAppliesToAll) {
  ActivityVector A;
  A[ActivityKind::Loads] = 10;
  A[ActivityKind::Branches] = 4;
  A *= 2.5;
  EXPECT_DOUBLE_EQ(A[ActivityKind::Loads], 25);
  EXPECT_DOUBLE_EQ(A[ActivityKind::Branches], 10);
}

TEST(ActivityVector, TotalSumsEverything) {
  ActivityVector A;
  A[ActivityKind::Loads] = 1;
  A[ActivityKind::Stores] = 2;
  A[ActivityKind::MsUops] = 3;
  EXPECT_DOUBLE_EQ(A.total(), 6);
}

TEST(ActivityKindNames, AllUniqueAndNonEmpty) {
  std::set<std::string> Names;
  for (size_t I = 0; I < NumActivityKinds; ++I) {
    std::string Name = activityKindName(static_cast<ActivityKind>(I));
    EXPECT_FALSE(Name.empty());
    EXPECT_TRUE(Names.insert(Name).second) << "duplicate name " << Name;
  }
}

TEST(ActivityKindNames, SpotChecks) {
  EXPECT_STREQ(activityKindName(ActivityKind::CoreCycles), "core_cycles");
  EXPECT_STREQ(activityKindName(ActivityKind::RefCycles), "ref_cycles");
  EXPECT_STREQ(activityKindName(ActivityKind::MsUops), "ms_uops");
}
