//===- tests/stats/StudentTTest.cpp - Student-t machinery tests ---------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/StudentT.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::stats;

TEST(TCdf, SymmetryAroundZero) {
  for (unsigned Dof : {1u, 3u, 10u, 50u})
    EXPECT_NEAR(tCdf(0.0, Dof), 0.5, 1e-10);
}

TEST(TCdf, Monotone) {
  EXPECT_LT(tCdf(-1.0, 5), tCdf(0.0, 5));
  EXPECT_LT(tCdf(0.0, 5), tCdf(1.0, 5));
}

TEST(TCdf, NegativePositiveComplement) {
  EXPECT_NEAR(tCdf(-2.0, 7) + tCdf(2.0, 7), 1.0, 1e-10);
}

TEST(TCritical, MatchesStandardTables95) {
  // Classic two-sided 95% critical values.
  EXPECT_NEAR(tCriticalValue(1, 0.95), 12.706, 1e-2);
  EXPECT_NEAR(tCriticalValue(2, 0.95), 4.303, 1e-3);
  EXPECT_NEAR(tCriticalValue(5, 0.95), 2.571, 1e-3);
  EXPECT_NEAR(tCriticalValue(10, 0.95), 2.228, 1e-3);
  EXPECT_NEAR(tCriticalValue(30, 0.95), 2.042, 1e-3);
}

TEST(TCritical, MatchesStandardTables99) {
  EXPECT_NEAR(tCriticalValue(10, 0.99), 3.169, 1e-3);
  EXPECT_NEAR(tCriticalValue(5, 0.99), 4.032, 1e-3);
}

TEST(TCritical, ApproachesNormalForLargeDof) {
  EXPECT_NEAR(tCriticalValue(10000, 0.95), 1.960, 2e-3);
}

TEST(TCritical, DecreasesWithDof) {
  EXPECT_GT(tCriticalValue(2, 0.95), tCriticalValue(5, 0.95));
  EXPECT_GT(tCriticalValue(5, 0.95), tCriticalValue(50, 0.95));
}

TEST(TCritical, IncreasesWithConfidence) {
  EXPECT_LT(tCriticalValue(8, 0.90), tCriticalValue(8, 0.95));
  EXPECT_LT(tCriticalValue(8, 0.95), tCriticalValue(8, 0.99));
}

TEST(MeanCI, KnownSample) {
  // Sample {10, 12, 14}: mean 12, s = 2, halfwidth = t(2,.95)*2/sqrt(3).
  MeanConfidenceInterval CI = meanConfidenceInterval({10, 12, 14}, 0.95);
  EXPECT_DOUBLE_EQ(CI.Mean, 12.0);
  EXPECT_NEAR(CI.HalfWidth, 4.303 * 2 / std::sqrt(3.0), 2e-3);
  EXPECT_NEAR(CI.lower(), CI.Mean - CI.HalfWidth, 1e-12);
  EXPECT_NEAR(CI.upper(), CI.Mean + CI.HalfWidth, 1e-12);
}

TEST(MeanCI, ConstantSampleHasZeroWidth) {
  MeanConfidenceInterval CI = meanConfidenceInterval({7, 7, 7, 7});
  EXPECT_DOUBLE_EQ(CI.HalfWidth, 0.0);
  EXPECT_TRUE(CI.withinPrecision(0.001));
}

TEST(MeanCI, PrecisionCriterion) {
  MeanConfidenceInterval CI;
  CI.Mean = 100;
  CI.HalfWidth = 2;
  EXPECT_TRUE(CI.withinPrecision(0.025));
  EXPECT_FALSE(CI.withinPrecision(0.01));
}

TEST(MeanCI, ZeroMeanPrecisionOnlyWhenExact) {
  MeanConfidenceInterval CI;
  CI.Mean = 0;
  CI.HalfWidth = 1;
  EXPECT_FALSE(CI.withinPrecision(0.1));
  CI.HalfWidth = 0;
  EXPECT_TRUE(CI.withinPrecision(0.1));
}
