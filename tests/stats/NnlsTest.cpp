//===- tests/stats/NnlsTest.cpp - Non-negative least squares tests -------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Nnls.h"

#include "stats/Solve.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::stats;

TEST(Nnls, RecoversNonNegativeGroundTruth) {
  // If the unconstrained optimum is already non-negative, NNLS matches it.
  Rng R(1);
  Matrix A(40, 3);
  std::vector<double> Truth = {2.0, 0.5, 1.0};
  std::vector<double> B(40);
  for (size_t I = 0; I < 40; ++I) {
    double Sum = 0;
    for (size_t J = 0; J < 3; ++J) {
      A.at(I, J) = R.uniform(0, 4);
      Sum += A.at(I, J) * Truth[J];
    }
    B[I] = Sum;
  }
  auto Solution = solveNnls(A, B);
  ASSERT_TRUE(bool(Solution));
  for (size_t J = 0; J < 3; ++J)
    EXPECT_NEAR(Solution->X[J], Truth[J], 1e-8);
  EXPECT_NEAR(Solution->ResidualNorm, 0.0, 1e-8);
}

TEST(Nnls, ClampsNegativeComponent) {
  // Unconstrained solution of this system has a negative coefficient;
  // NNLS must zero it instead.
  Matrix A = Matrix::fromRows({{1, 1}, {1, 1.01}, {1, 0.99}});
  std::vector<double> B = {1, 0.5, 1.5}; // Pulls column 2 negative.
  auto Unconstrained = solveLeastSquaresQR(A, B);
  ASSERT_TRUE(bool(Unconstrained));
  ASSERT_LT((*Unconstrained)[1], 0.0);
  auto Constrained = solveNnls(A, B);
  ASSERT_TRUE(bool(Constrained));
  EXPECT_DOUBLE_EQ(Constrained->X[1], 0.0);
  EXPECT_GE(Constrained->X[0], 0.0);
}

TEST(Nnls, AllZeroWhenTargetAnticorrelated) {
  // b is negative; with non-negative columns the best non-negative fit
  // is x = 0.
  Matrix A = Matrix::fromRows({{1}, {2}, {3}});
  auto Solution = solveNnls(A, {-1, -2, -3});
  ASSERT_TRUE(bool(Solution));
  EXPECT_DOUBLE_EQ(Solution->X[0], 0.0);
}

TEST(Nnls, ResidualNeverExceedsZeroSolution) {
  Rng R(7);
  Matrix A(25, 4);
  std::vector<double> B(25);
  for (size_t I = 0; I < 25; ++I) {
    for (size_t J = 0; J < 4; ++J)
      A.at(I, J) = R.gaussian();
    B[I] = R.gaussian();
  }
  auto Solution = solveNnls(A, B);
  ASSERT_TRUE(bool(Solution));
  EXPECT_LE(Solution->ResidualNorm, norm2(B) + 1e-9);
}

TEST(Nnls, RidgeShrinksSolutionNorm) {
  Rng R(9);
  Matrix A(30, 3);
  std::vector<double> B(30);
  for (size_t I = 0; I < 30; ++I) {
    for (size_t J = 0; J < 3; ++J)
      A.at(I, J) = R.uniform(0, 1);
    B[I] = R.uniform(0, 5);
  }
  auto Plain = solveNnls(A, B, 0.0);
  auto Ridged = solveNnls(A, B, 50.0);
  ASSERT_TRUE(bool(Plain));
  ASSERT_TRUE(bool(Ridged));
  EXPECT_LT(norm2(Ridged->X), norm2(Plain->X) + 1e-12);
}

TEST(Nnls, HandlesCollinearColumns) {
  // Exactly duplicated columns: NNLS must still terminate with a valid
  // solution (the QR path sees only the passive subset).
  Matrix A = Matrix::fromRows({{1, 1}, {2, 2}, {3, 3}});
  auto Solution = solveNnls(A, {2, 4, 6});
  ASSERT_TRUE(bool(Solution));
  EXPECT_NEAR(Solution->ResidualNorm, 0.0, 1e-8);
  EXPECT_GE(Solution->X[0], 0.0);
  EXPECT_GE(Solution->X[1], 0.0);
}

// Property: NNLS satisfies the KKT conditions on random problems, with
// and without ridge.
class NnlsKkt : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NnlsKkt, SatisfiesKktConditions) {
  Rng R(GetParam());
  size_t Rows = 10 + R.below(40);
  size_t Cols = 1 + R.below(6);
  Matrix A(Rows, Cols);
  std::vector<double> B(Rows);
  for (size_t I = 0; I < Rows; ++I) {
    for (size_t J = 0; J < Cols; ++J)
      A.at(I, J) = R.gaussian(0, 2);
    B[I] = R.gaussian(0, 3);
  }
  double Lambda = (GetParam() % 2 == 0) ? 0.0 : 0.1;
  auto Solution = solveNnls(A, B, Lambda);
  ASSERT_TRUE(bool(Solution));
  EXPECT_TRUE(satisfiesNnlsKkt(A, B, Solution->X, Lambda, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnlsKkt, ::testing::Range<uint64_t>(0, 16));
