//===- tests/stats/SimdKernelTest.cpp - SIMD dispatch properties ----------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Property tests for the stats/SimdKernels dispatch contract:
//
//  * column-parallel kernels (gemmAccumulate, gemmATransposedAccumulate,
//    axpy, quantizeScaleClamp, adamStep, the gram tile) are bit-identical
//    to the scalar reference under every mode;
//  * K-split kernels (dot, gemmBTransposedAccumulate, sum,
//    weightedIndexedSum) stay within 1e-12 relative error of the scalar
//    reference under the SimdMode::Avx2 opt-in;
//  * sizes that are not a multiple of the vector width exercise the
//    remainder paths, and misaligned pointers exercise the unaligned
//    loads;
//  * SimdMode::Scalar forces the reference everywhere.
//
// On hosts (or builds) without AVX2 both sides resolve to the scalar
// kernels and every comparison is trivially exact — the suite still
// pins the dispatch plumbing.
//
//===----------------------------------------------------------------------===//

#include "stats/Matrix.h"
#include "stats/SimdKernels.h"
#include "support/Rng.h"

#include "gtest/gtest.h"

#include <cmath>
#include <cstdint>
#include <vector>

using namespace slope;
using namespace slope::stats;

namespace {

/// Restores the process-wide SIMD mode on scope exit so test order never
/// leaks one test's mode into the next.
class ModeGuard {
public:
  ModeGuard() : Saved(defaultSimdMode()) {}
  ~ModeGuard() { setDefaultSimdMode(Saved); }

private:
  SimdMode Saved;
};

std::vector<double> randomVector(size_t N, uint64_t Seed) {
  Rng R(Seed);
  std::vector<double> V(N);
  for (double &X : V)
    X = R.uniform(-3.0, 3.0);
  return V;
}

double maxRelativeError(const std::vector<double> &A,
                        const std::vector<double> &B) {
  EXPECT_EQ(A.size(), B.size());
  double Max = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    double Scale = std::max({std::fabs(A[I]), std::fabs(B[I]), 1e-30});
    Max = std::max(Max, std::fabs(A[I] - B[I]) / Scale);
  }
  return Max;
}

// Sizes that cover the 4-wide and 8-wide main loops, their remainders,
// the N == 32 register-blocked gemm fast path, and tiny inputs that
// never reach a full vector.
constexpr size_t Sizes[] = {1, 2, 3, 4, 5, 7, 8, 15, 16, 21, 31, 32, 33, 97};

} // namespace

//===----------------------------------------------------------------------===//
// Column-parallel kernels: bit identity under every mode
//===----------------------------------------------------------------------===//

TEST(SimdKernelTest, GemmAccumulateBitIdentical) {
  ModeGuard Guard;
  for (size_t N : Sizes) {
    const size_t M = 9, K = 7;
    std::vector<double> A = randomVector(M * K, 100 + N);
    std::vector<double> B = randomVector(K * N, 200 + N);
    std::vector<double> Ref = randomVector(M * N, 300 + N);
    std::vector<double> Got = Ref;
    setDefaultSimdMode(SimdMode::Scalar);
    gemmAccumulate(A.data(), B.data(), Ref.data(), M, K, N);
    setDefaultSimdMode(SimdMode::Auto);
    gemmAccumulate(A.data(), B.data(), Got.data(), M, K, N);
    EXPECT_EQ(Ref, Got) << "N=" << N;
  }
}

TEST(SimdKernelTest, GemmAccumulateRegisterBlockedPathBitIdentical) {
  ModeGuard Guard;
  // N == 32 takes the register-blocked fast path in the AVX2 variant;
  // sweep K (including odd values) and M around it.
  for (size_t K : {1u, 2u, 5u, 6u, 16u}) {
    const size_t M = 16, N = 32;
    std::vector<double> A = randomVector(M * K, 400 + K);
    std::vector<double> B = randomVector(K * N, 500 + K);
    std::vector<double> Ref = randomVector(M * N, 600 + K);
    std::vector<double> Got = Ref;
    setDefaultSimdMode(SimdMode::Scalar);
    gemmAccumulate(A.data(), B.data(), Ref.data(), M, K, N);
    setDefaultSimdMode(SimdMode::Auto);
    gemmAccumulate(A.data(), B.data(), Got.data(), M, K, N);
    EXPECT_EQ(Ref, Got) << "K=" << K;
  }
}

TEST(SimdKernelTest, GemmATransposedAccumulateBitIdentical) {
  ModeGuard Guard;
  for (size_t N : Sizes) {
    const size_t M = 6, K = 5; // odd K exercises the single-K remainder
    std::vector<double> A = randomVector(K * M, 700 + N);
    std::vector<double> B = randomVector(K * N, 800 + N);
    std::vector<double> Ref = randomVector(M * N, 900 + N);
    std::vector<double> Got = Ref;
    setDefaultSimdMode(SimdMode::Scalar);
    gemmATransposedAccumulate(A.data(), B.data(), Ref.data(), M, K, N);
    setDefaultSimdMode(SimdMode::Auto);
    gemmATransposedAccumulate(A.data(), B.data(), Got.data(), M, K, N);
    EXPECT_EQ(Ref, Got) << "N=" << N;
  }
}

TEST(SimdKernelTest, AxpyBitIdenticalIncludingMisalignedTails) {
  ModeGuard Guard;
  for (size_t N : Sizes) {
    std::vector<double> X = randomVector(N + 1, 1000 + N);
    std::vector<double> Ref = randomVector(N + 1, 1100 + N);
    std::vector<double> Got = Ref;
    // Offset by one double so the pointers are 8- but not 32-byte
    // aligned: the kernels use unaligned loads, alignment is perf only.
    setDefaultSimdMode(SimdMode::Scalar);
    axpy(1.7, X.data() + 1, Ref.data() + 1, N);
    setDefaultSimdMode(SimdMode::Auto);
    axpy(1.7, X.data() + 1, Got.data() + 1, N);
    EXPECT_EQ(Ref, Got) << "N=" << N;
  }
}

TEST(SimdKernelTest, GramBitIdentical) {
  ModeGuard Guard;
  // Wide enough to cross the 64-column tile edge and hit the odd-row
  // remainder inside the AVX2 tile kernel.
  const size_t Rows = 37, Cols = 70;
  Matrix M(Rows, Cols);
  Rng R(42);
  for (size_t I = 0; I < Rows; ++I)
    for (size_t J = 0; J < Cols; ++J)
      M.at(I, J) = R.uniform(-2.0, 2.0);
  setDefaultSimdMode(SimdMode::Scalar);
  Matrix Ref = M.gram();
  setDefaultSimdMode(SimdMode::Auto);
  Matrix Got = M.gram();
  EXPECT_EQ(Ref.maxAbsDiff(Got), 0.0);
}

TEST(SimdKernelTest, QuantizeScaleClampBitIdentical) {
  ModeGuard Guard;
  for (size_t N : Sizes) {
    std::vector<double> X = randomVector(N, 1200 + N);
    std::vector<double> Scale = randomVector(N, 1300 + N);
    std::vector<double> Offset = randomVector(N, 1400 + N);
    // A couple of values far outside the clamp range.
    X[0] = 9e9;
    if (N > 1)
      X[N - 1] = -9e9;
    std::vector<int32_t> Ref(N), Got(N);
    setDefaultSimdMode(SimdMode::Scalar);
    quantizeScaleClamp(X.data(), Scale.data(), Offset.data(), N, 1 << 20,
                       Ref.data());
    setDefaultSimdMode(SimdMode::Auto);
    quantizeScaleClamp(X.data(), Scale.data(), Offset.data(), N, 1 << 20,
                       Got.data());
    EXPECT_EQ(Ref, Got) << "N=" << N;
  }
}

TEST(SimdKernelTest, AdamStepBitIdentical) {
  ModeGuard Guard;
  for (size_t N : Sizes) {
    std::vector<double> W = randomVector(N, 1500 + N);
    std::vector<double> M = randomVector(N, 1600 + N);
    std::vector<double> V = randomVector(N, 1700 + N);
    for (double &X : V)
      X = std::fabs(X); // second moment is non-negative in real use
    std::vector<double> G = randomVector(N, 1800 + N);
    auto Wr = W, Mr = M, Vr = V;
    setDefaultSimdMode(SimdMode::Scalar);
    adamStep(Wr.data(), Mr.data(), Vr.data(), G.data(), N, 1e-4, 0.9, 0.999,
             0.1, 0.001, 1e-3, 1e-8);
    setDefaultSimdMode(SimdMode::Auto);
    adamStep(W.data(), M.data(), V.data(), G.data(), N, 1e-4, 0.9, 0.999, 0.1,
             0.001, 1e-3, 1e-8);
    EXPECT_EQ(Wr, W) << "N=" << N;
    EXPECT_EQ(Mr, M) << "N=" << N;
    EXPECT_EQ(Vr, V) << "N=" << N;
  }
}

//===----------------------------------------------------------------------===//
// K-split kernels: 1e-12 relative tolerance under the Avx2 opt-in
//===----------------------------------------------------------------------===//

TEST(SimdKernelTest, DotWithinTolerance) {
  ModeGuard Guard;
  for (size_t N : Sizes) {
    std::vector<double> A = randomVector(N + 1, 1900 + N);
    std::vector<double> B = randomVector(N + 1, 2000 + N);
    setDefaultSimdMode(SimdMode::Scalar);
    double Ref = dot(A.data() + 1, B.data() + 1, N); // misaligned
    setDefaultSimdMode(SimdMode::Avx2);
    double Got = dot(A.data() + 1, B.data() + 1, N);
    EXPECT_LT(maxRelativeError({Ref}, {Got}), 1e-12) << "N=" << N;
  }
}

TEST(SimdKernelTest, GemmBTransposedAccumulateWithinTolerance) {
  ModeGuard Guard;
  for (size_t N : Sizes) {
    const size_t M = 8, K = 33; // odd K exercises the scalar K tail
    std::vector<double> A = randomVector(M * K, 2100 + N);
    std::vector<double> B = randomVector(N * K, 2200 + N);
    std::vector<double> Ref = randomVector(M * N, 2300 + N);
    std::vector<double> Got = Ref;
    setDefaultSimdMode(SimdMode::Scalar);
    gemmBTransposedAccumulate(A.data(), B.data(), Ref.data(), M, K, N);
    setDefaultSimdMode(SimdMode::Avx2);
    gemmBTransposedAccumulate(A.data(), B.data(), Got.data(), M, K, N);
    EXPECT_LT(maxRelativeError(Ref, Got), 1e-12) << "N=" << N;
  }
}

TEST(SimdKernelTest, SumWithinTolerance) {
  ModeGuard Guard;
  for (size_t N : Sizes) {
    std::vector<double> X = randomVector(N, 2400 + N);
    setDefaultSimdMode(SimdMode::Scalar);
    double Ref = sum(X.data(), N);
    setDefaultSimdMode(SimdMode::Avx2);
    double Got = sum(X.data(), N);
    EXPECT_LT(maxRelativeError({Ref}, {Got}), 1e-12) << "N=" << N;
  }
}

TEST(SimdKernelTest, WeightedIndexedSumWithinTolerance) {
  ModeGuard Guard;
  const size_t Values = 16;
  std::vector<double> Table = randomVector(Values, 2500);
  for (size_t N : Sizes) {
    std::vector<double> W = randomVector(N, 2600 + N);
    Rng R(2700 + N);
    std::vector<uint32_t> Idx(N);
    for (uint32_t &I : Idx)
      I = static_cast<uint32_t>(R.next() % Values);
    setDefaultSimdMode(SimdMode::Scalar);
    double Ref = weightedIndexedSum(W.data(), Idx.data(), N, Table.data());
    setDefaultSimdMode(SimdMode::Avx2);
    double Got = weightedIndexedSum(W.data(), Idx.data(), N, Table.data());
    EXPECT_LT(maxRelativeError({Ref}, {Got}), 1e-12) << "N=" << N;
  }
}

//===----------------------------------------------------------------------===//
// Dispatch plumbing
//===----------------------------------------------------------------------===//

TEST(SimdKernelTest, ScalarModeDisablesEveryVariant) {
  ModeGuard Guard;
  setDefaultSimdMode(SimdMode::Scalar);
  EXPECT_FALSE(simdColumnKernelsActive());
  EXPECT_FALSE(simdKSplitKernelsActive());
  EXPECT_STREQ(resolvedSimdVariant(), "scalar");
}

TEST(SimdKernelTest, AutoNeverEnablesKSplitKernels) {
  ModeGuard Guard;
  setDefaultSimdMode(SimdMode::Auto);
  EXPECT_FALSE(simdKSplitKernelsActive());
  // Under Auto the K-split entry points must return the exact scalar
  // result even on an AVX2 host.
  std::vector<double> A = randomVector(97, 2800);
  std::vector<double> B = randomVector(97, 2900);
  double Got = dot(A.data(), B.data(), 97);
  setDefaultSimdMode(SimdMode::Scalar);
  double Ref = dot(A.data(), B.data(), 97);
  EXPECT_EQ(Ref, Got);
}

TEST(SimdKernelTest, ResolvedVariantMatchesActivity) {
  ModeGuard Guard;
  setDefaultSimdMode(SimdMode::Auto);
  if (simdColumnKernelsActive())
    EXPECT_STREQ(resolvedSimdVariant(), "avx2");
  else
    EXPECT_STREQ(resolvedSimdVariant(), "scalar");
}
