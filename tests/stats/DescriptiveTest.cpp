//===- tests/stats/DescriptiveTest.cpp - Descriptive statistics tests ---------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Descriptive.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::stats;

TEST(Descriptive, MeanOfConstants) {
  EXPECT_DOUBLE_EQ(mean({5, 5, 5}), 5.0);
}

TEST(Descriptive, MeanOfMixedValues) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
}

TEST(Descriptive, SampleVarianceKnownValue) {
  // Var of {2,4,4,4,5,5,7,9} with n-1 denominator = 32/7.
  EXPECT_NEAR(sampleVariance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
}

TEST(Descriptive, StdDevIsSqrtOfVariance) {
  std::vector<double> Xs = {1, 3, 5, 9};
  EXPECT_DOUBLE_EQ(sampleStdDev(Xs), std::sqrt(sampleVariance(Xs)));
}

TEST(Descriptive, VarianceOfConstantsIsZero) {
  EXPECT_DOUBLE_EQ(sampleVariance({3, 3, 3, 3}), 0.0);
}

TEST(Descriptive, CoefficientOfVariationScaleInvariant) {
  std::vector<double> Xs = {10, 12, 11, 13};
  std::vector<double> Scaled;
  for (double X : Xs)
    Scaled.push_back(X * 1000);
  EXPECT_NEAR(coefficientOfVariation(Xs), coefficientOfVariation(Scaled),
              1e-12);
}

TEST(Descriptive, MinMax) {
  std::vector<double> Xs = {3, -1, 7, 0};
  EXPECT_DOUBLE_EQ(minOf(Xs), -1);
  EXPECT_DOUBLE_EQ(maxOf(Xs), 7);
}

TEST(Descriptive, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Descriptive, PercentageErrorBasics) {
  EXPECT_DOUBLE_EQ(percentageError(110, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentageError(90, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentageError(100, 100), 0.0);
}

TEST(Descriptive, PercentageErrorAgainstNegativeActual) {
  EXPECT_DOUBLE_EQ(percentageError(-90, -100), 10.0);
}

TEST(Descriptive, ErrorSummaryTriple) {
  ErrorSummary S = summarizeErrors({5, 10, 30});
  EXPECT_DOUBLE_EQ(S.Min, 5);
  EXPECT_DOUBLE_EQ(S.Avg, 15);
  EXPECT_DOUBLE_EQ(S.Max, 30);
}

TEST(Descriptive, ErrorSummaryStringMatchesPaperStyle) {
  ErrorSummary S;
  S.Min = 6.6;
  S.Avg = 31.2;
  S.Max = 61.9;
  EXPECT_EQ(S.str(), "(6.6, 31.2, 61.9)");
}

TEST(Descriptive, PredictionErrorSummary) {
  ErrorSummary S = predictionErrorSummary({110, 90}, {100, 100});
  EXPECT_DOUBLE_EQ(S.Min, 10);
  EXPECT_DOUBLE_EQ(S.Max, 10);
}

// Property: for any sample, min <= mean <= max and variance >= 0.
class DescriptiveProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DescriptiveProperty, OrderAndNonNegativity) {
  Rng R(GetParam());
  std::vector<double> Xs;
  size_t N = 2 + R.below(50);
  for (size_t I = 0; I < N; ++I)
    Xs.push_back(R.gaussian(R.uniform(-100, 100), R.uniform(0.1, 10)));
  double Mu = mean(Xs);
  EXPECT_LE(minOf(Xs), Mu);
  EXPECT_GE(maxOf(Xs), Mu);
  EXPECT_GE(sampleVariance(Xs), 0.0);
  EXPECT_GE(median(Xs), minOf(Xs));
  EXPECT_LE(median(Xs), maxOf(Xs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DescriptiveProperty,
                         ::testing::Range<uint64_t>(0, 12));

TEST(DescriptiveDeath, EmptyMeanAsserts) {
  EXPECT_DEATH((void)mean({}), "empty");
}

TEST(DescriptiveDeath, SingleElementVarianceAsserts) {
  EXPECT_DEATH((void)sampleVariance({1.0}), "two points");
}
