//===- tests/stats/CorrelationTest.cpp - Correlation tests --------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Correlation.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::stats;

TEST(Pearson, PerfectPositive) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, AffineInvariance) {
  std::vector<double> X = {1, 4, 2, 8, 5};
  std::vector<double> Y = {2, 3, 9, 1, 4};
  double R1 = pearson(X, Y);
  std::vector<double> Xs;
  for (double V : X)
    Xs.push_back(3.5 * V - 100);
  EXPECT_NEAR(pearson(Xs, Y), R1, 1e-12);
}

TEST(Pearson, SymmetricInArguments) {
  std::vector<double> X = {1, 4, 2, 8, 5};
  std::vector<double> Y = {2, 3, 9, 1, 4};
  EXPECT_DOUBLE_EQ(pearson(X, Y), pearson(Y, X));
}

TEST(Pearson, ConstantSeriesGivesZero) {
  EXPECT_DOUBLE_EQ(pearson({5, 5, 5}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(pearson({1, 2, 3}, {7, 7, 7}), 0.0);
}

TEST(Pearson, UncorrelatedNoiseIsSmall) {
  Rng R(99);
  std::vector<double> X, Y;
  for (int I = 0; I < 20000; ++I) {
    X.push_back(R.gaussian());
    Y.push_back(R.gaussian());
  }
  EXPECT_NEAR(pearson(X, Y), 0.0, 0.03);
}

// Property: |r| <= 1 for arbitrary data.
class PearsonBound : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PearsonBound, WithinUnitInterval) {
  Rng R(GetParam());
  std::vector<double> X, Y;
  size_t N = 2 + R.below(100);
  for (size_t I = 0; I < N; ++I) {
    X.push_back(R.uniform(-1e6, 1e6));
    Y.push_back(R.uniform(-1e6, 1e6));
  }
  double Corr = pearson(X, Y);
  EXPECT_GE(Corr, -1.0 - 1e-12);
  EXPECT_LE(Corr, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PearsonBound,
                         ::testing::Range<uint64_t>(0, 10));

TEST(MidRanks, SimpleOrdering) {
  std::vector<double> Ranks = midRanks({30, 10, 20});
  EXPECT_DOUBLE_EQ(Ranks[0], 3);
  EXPECT_DOUBLE_EQ(Ranks[1], 1);
  EXPECT_DOUBLE_EQ(Ranks[2], 2);
}

TEST(MidRanks, TiesGetAverageRank) {
  std::vector<double> Ranks = midRanks({5, 5, 1});
  EXPECT_DOUBLE_EQ(Ranks[2], 1);
  EXPECT_DOUBLE_EQ(Ranks[0], 2.5);
  EXPECT_DOUBLE_EQ(Ranks[1], 2.5);
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  // y = x^3 is monotone: Spearman 1, Pearson < 1.
  std::vector<double> X = {1, 2, 3, 4, 5, 6};
  std::vector<double> Y;
  for (double V : X)
    Y.push_back(V * V * V);
  EXPECT_NEAR(spearman(X, Y), 1.0, 1e-12);
  EXPECT_LT(pearson(X, Y), 1.0);
}

TEST(Spearman, ReversedOrderIsMinusOne) {
  EXPECT_NEAR(spearman({1, 2, 3, 4}, {9, 7, 5, 3}), -1.0, 1e-12);
}
