//===- tests/stats/SolveTest.cpp - Linear solver tests -------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Solve.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::stats;

TEST(Cholesky, SolvesKnownSpdSystem) {
  Matrix A = Matrix::fromRows({{4, 2}, {2, 3}});
  auto X = solveCholesky(A, {10, 9});
  ASSERT_TRUE(bool(X));
  EXPECT_NEAR((*X)[0], 1.5, 1e-12);
  EXPECT_NEAR((*X)[1], 2.0, 1e-12);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix A = Matrix::fromRows({{1, 2}, {2, 1}}); // Eigenvalues 3, -1.
  auto X = solveCholesky(A, {1, 1});
  ASSERT_FALSE(bool(X));
  EXPECT_NE(X.error().message().find("positive definite"),
            std::string::npos);
}

TEST(QR, ExactSolutionForSquareSystem) {
  Matrix A = Matrix::fromRows({{2, 1}, {1, 3}});
  auto X = solveLeastSquaresQR(A, {5, 10});
  ASSERT_TRUE(bool(X));
  EXPECT_NEAR((*X)[0], 1.0, 1e-10);
  EXPECT_NEAR((*X)[1], 3.0, 1e-10);
}

TEST(QR, OverdeterminedConsistentSystem) {
  // y = 2x sampled thrice: exact fit.
  Matrix A = Matrix::fromRows({{1}, {2}, {3}});
  auto X = solveLeastSquaresQR(A, {2, 4, 6});
  ASSERT_TRUE(bool(X));
  EXPECT_NEAR((*X)[0], 2.0, 1e-12);
}

TEST(QR, LeastSquaresResidualOrthogonality) {
  // Property: A^T (b - A x*) == 0 at the least-squares optimum.
  Rng R(3);
  Matrix A(20, 4);
  std::vector<double> B(20);
  for (size_t I = 0; I < 20; ++I) {
    for (size_t J = 0; J < 4; ++J)
      A.at(I, J) = R.gaussian();
    B[I] = R.gaussian();
  }
  auto X = solveLeastSquaresQR(A, B);
  ASSERT_TRUE(bool(X));
  std::vector<double> Residual = B;
  std::vector<double> Ax = A.multiply(*X);
  for (size_t I = 0; I < 20; ++I)
    Residual[I] -= Ax[I];
  std::vector<double> Grad = A.transposeMultiply(Residual);
  for (double G : Grad)
    EXPECT_NEAR(G, 0.0, 1e-9);
}

TEST(QR, DetectsRankDeficiency) {
  // Second column is 2x the first.
  Matrix A = Matrix::fromRows({{1, 2}, {2, 4}, {3, 6}});
  auto X = solveLeastSquaresQR(A, {1, 2, 3});
  ASSERT_FALSE(bool(X));
  EXPECT_NE(X.error().message().find("rank deficient"), std::string::npos);
}

TEST(QR, UnderdeterminedIsRejected) {
  Matrix A(1, 3);
  auto X = solveLeastSquaresQR(A, {1});
  ASSERT_FALSE(bool(X));
}

TEST(NormalEquations, MatchesQrOnWellConditionedProblem) {
  Rng R(8);
  Matrix A(30, 3);
  std::vector<double> B(30);
  for (size_t I = 0; I < 30; ++I) {
    for (size_t J = 0; J < 3; ++J)
      A.at(I, J) = R.uniform(1, 5);
    B[I] = R.uniform(0, 10);
  }
  auto X1 = solveLeastSquaresQR(A, B);
  auto X2 = solveNormalEquations(A, B);
  ASSERT_TRUE(bool(X1));
  ASSERT_TRUE(bool(X2));
  for (size_t J = 0; J < 3; ++J)
    EXPECT_NEAR((*X1)[J], (*X2)[J], 1e-7);
}

TEST(NormalEquations, RidgeShrinksTowardZero) {
  Matrix A = Matrix::fromRows({{1}, {1}, {1}});
  auto NoRidge = solveNormalEquations(A, {3, 3, 3}, 0.0);
  auto Ridge = solveNormalEquations(A, {3, 3, 3}, 10.0);
  ASSERT_TRUE(bool(NoRidge));
  ASSERT_TRUE(bool(Ridge));
  EXPECT_NEAR((*NoRidge)[0], 3.0, 1e-12);
  EXPECT_LT((*Ridge)[0], 3.0);
  EXPECT_GT((*Ridge)[0], 0.0);
}

TEST(NormalEquations, RidgeRegularizesRankDeficiency) {
  Matrix A = Matrix::fromRows({{1, 2}, {2, 4}, {3, 6}});
  auto X = solveNormalEquations(A, {1, 2, 3}, 1e-6);
  EXPECT_TRUE(bool(X));
}
