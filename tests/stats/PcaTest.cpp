//===- tests/stats/PcaTest.cpp - PCA and Jacobi eigen tests ---------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Pca.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::stats;

TEST(JacobiEigen, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix A = Matrix::fromRows({{3, 0}, {0, 1}});
  auto E = jacobiEigen(A);
  ASSERT_TRUE(bool(E));
  EXPECT_NEAR(E->Values[0], 3.0, 1e-12);
  EXPECT_NEAR(E->Values[1], 1.0, 1e-12);
}

TEST(JacobiEigen, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix A = Matrix::fromRows({{2, 1}, {1, 2}});
  auto E = jacobiEigen(A);
  ASSERT_TRUE(bool(E));
  EXPECT_NEAR(E->Values[0], 3.0, 1e-10);
  EXPECT_NEAR(E->Values[1], 1.0, 1e-10);
  // Leading eigenvector is (1,1)/sqrt(2) up to sign.
  double Ratio = E->Vectors.at(0, 0) / E->Vectors.at(1, 0);
  EXPECT_NEAR(Ratio, 1.0, 1e-8);
}

TEST(JacobiEigen, ReconstructsTheMatrix) {
  Rng R(1);
  size_t N = 6;
  Matrix A(N, N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I; J < N; ++J)
      A.at(I, J) = A.at(J, I) = R.uniform(-2, 2);
  auto E = jacobiEigen(A);
  ASSERT_TRUE(bool(E));
  // A == V diag(L) V^T.
  Matrix Reconstructed(N, N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J) {
      double Sum = 0;
      for (size_t K = 0; K < N; ++K)
        Sum += E->Vectors.at(I, K) * E->Values[K] * E->Vectors.at(J, K);
      Reconstructed.at(I, J) = Sum;
    }
  EXPECT_LT(Reconstructed.maxAbsDiff(A), 1e-8);
}

TEST(JacobiEigen, EigenvectorsAreOrthonormal) {
  Rng R(2);
  size_t N = 5;
  Matrix A(N, N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I; J < N; ++J)
      A.at(I, J) = A.at(J, I) = R.gaussian();
  auto E = jacobiEigen(A);
  ASSERT_TRUE(bool(E));
  for (size_t C1 = 0; C1 < N; ++C1)
    for (size_t C2 = 0; C2 < N; ++C2) {
      double Dot = 0;
      for (size_t I = 0; I < N; ++I)
        Dot += E->Vectors.at(I, C1) * E->Vectors.at(I, C2);
      EXPECT_NEAR(Dot, C1 == C2 ? 1.0 : 0.0, 1e-9);
    }
}

TEST(JacobiEigen, ValuesSortedDescending) {
  Rng R(3);
  Matrix A(7, 7);
  for (size_t I = 0; I < 7; ++I)
    for (size_t J = I; J < 7; ++J)
      A.at(I, J) = A.at(J, I) = R.uniform(-1, 1);
  auto E = jacobiEigen(A);
  ASSERT_TRUE(bool(E));
  for (size_t I = 0; I + 1 < 7; ++I)
    EXPECT_GE(E->Values[I], E->Values[I + 1]);
}

TEST(JacobiEigen, RejectsNonSquare) {
  EXPECT_FALSE(bool(jacobiEigen(Matrix(2, 3))));
}

TEST(JacobiEigen, RejectsAsymmetric) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}});
  auto E = jacobiEigen(A);
  ASSERT_FALSE(bool(E));
  EXPECT_NE(E.error().message().find("symmetric"), std::string::npos);
}

TEST(Pca, PerfectlyCorrelatedFeaturesGiveOneComponent) {
  Rng R(4);
  Matrix X(50, 3);
  for (size_t I = 0; I < 50; ++I) {
    double V = R.uniform(0, 10);
    X.at(I, 0) = V;
    X.at(I, 1) = 3 * V + 1;
    X.at(I, 2) = -2 * V;
  }
  auto P = fitPca(X);
  ASSERT_TRUE(bool(P));
  EXPECT_GT(P->explainedVariance(1), 0.999);
}

TEST(Pca, IndependentFeaturesSpreadVariance) {
  Rng R(5);
  Matrix X(4000, 3);
  for (size_t I = 0; I < 4000; ++I)
    for (size_t J = 0; J < 3; ++J)
      X.at(I, J) = R.gaussian();
  auto P = fitPca(X);
  ASSERT_TRUE(bool(P));
  EXPECT_LT(P->explainedVariance(1), 0.45);
  EXPECT_NEAR(P->explainedVariance(3), 1.0, 1e-9);
}

TEST(Pca, ExplainedVarianceIsMonotone) {
  Rng R(6);
  Matrix X(100, 5);
  for (size_t I = 0; I < 100; ++I)
    for (size_t J = 0; J < 5; ++J)
      X.at(I, J) = R.uniform(0, 1) + (J == 0 ? 5 * R.gaussian() : 0);
  auto P = fitPca(X);
  ASSERT_TRUE(bool(P));
  for (size_t K = 0; K < 5; ++K)
    EXPECT_LE(P->explainedVariance(K), P->explainedVariance(K + 1) + 1e-12);
}

TEST(Pca, ConstantColumnIsHarmless) {
  Rng R(7);
  Matrix X(30, 2);
  for (size_t I = 0; I < 30; ++I) {
    X.at(I, 0) = R.uniform(0, 1);
    X.at(I, 1) = 42.0;
  }
  auto P = fitPca(X);
  ASSERT_TRUE(bool(P));
  EXPECT_TRUE(std::isfinite(P->Eigen.Values[0]));
}

TEST(Pca, RejectsSingleObservation) {
  EXPECT_FALSE(bool(fitPca(Matrix(1, 3))));
}
