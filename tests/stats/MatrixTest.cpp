//===- tests/stats/MatrixTest.cpp - Dense matrix tests ------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Matrix.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

using namespace slope;
using namespace slope::stats;

TEST(Matrix, ConstructionAndIndexing) {
  Matrix M(2, 3, 1.5);
  EXPECT_EQ(M.rows(), 2u);
  EXPECT_EQ(M.cols(), 3u);
  EXPECT_DOUBLE_EQ(M.at(1, 2), 1.5);
  M.at(0, 1) = -2;
  EXPECT_DOUBLE_EQ(M.at(0, 1), -2);
}

TEST(Matrix, FromRows) {
  Matrix M = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(M.rows(), 3u);
  EXPECT_EQ(M.cols(), 2u);
  EXPECT_DOUBLE_EQ(M.at(2, 1), 6);
}

TEST(Matrix, IdentityMultiplicationIsNoop) {
  Matrix M = Matrix::fromRows({{1, 2}, {3, 4}});
  Matrix I = Matrix::identity(2);
  EXPECT_DOUBLE_EQ(M.multiply(I).maxAbsDiff(M), 0.0);
  EXPECT_DOUBLE_EQ(I.multiply(M).maxAbsDiff(M), 0.0);
}

TEST(Matrix, KnownProduct) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}});
  Matrix B = Matrix::fromRows({{5, 6}, {7, 8}});
  Matrix C = A.multiply(B);
  EXPECT_DOUBLE_EQ(C.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(C.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 50);
}

TEST(Matrix, TransposeInvolution) {
  Matrix M = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_DOUBLE_EQ(M.transposed().transposed().maxAbsDiff(M), 0.0);
  EXPECT_DOUBLE_EQ(M.transposed().at(2, 1), 6);
}

TEST(Matrix, MatVec) {
  Matrix M = Matrix::fromRows({{1, 2}, {3, 4}});
  std::vector<double> V = M.multiply(std::vector<double>{1, 1});
  EXPECT_DOUBLE_EQ(V[0], 3);
  EXPECT_DOUBLE_EQ(V[1], 7);
}

TEST(Matrix, RowSpanAndColExtraction) {
  Matrix M = Matrix::fromRows({{1, 2}, {3, 4}});
  const double *R1 = M.rowSpan(1);
  EXPECT_DOUBLE_EQ(R1[0], 3);
  EXPECT_DOUBLE_EQ(R1[1], 4);
  EXPECT_EQ(M.col(0), (std::vector<double>{1, 3}));
}

TEST(Matrix, GramMatchesExplicitProduct) {
  Rng R(5);
  Matrix A(7, 4);
  for (size_t I = 0; I < 7; ++I)
    for (size_t J = 0; J < 4; ++J)
      A.at(I, J) = R.gaussian();
  Matrix G = A.gram();
  Matrix Explicit = A.transposed().multiply(A);
  EXPECT_LT(G.maxAbsDiff(Explicit), 1e-12);
}

TEST(Matrix, GramIsSymmetric) {
  Rng R(6);
  Matrix A(5, 3);
  for (size_t I = 0; I < 5; ++I)
    for (size_t J = 0; J < 3; ++J)
      A.at(I, J) = R.uniform(-2, 2);
  Matrix G = A.gram();
  for (size_t I = 0; I < 3; ++I)
    for (size_t J = 0; J < 3; ++J)
      EXPECT_DOUBLE_EQ(G.at(I, J), G.at(J, I));
}

TEST(Matrix, TransposeMultiplyMatchesExplicit) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
  std::vector<double> V = {1, -1, 2};
  std::vector<double> Got = A.transposeMultiply(V);
  EXPECT_DOUBLE_EQ(Got[0], 1 - 3 + 10);
  EXPECT_DOUBLE_EQ(Got[1], 2 - 4 + 12);
}

TEST(VectorOps, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5);
  EXPECT_DOUBLE_EQ(norm2({}), 0);
}

TEST(MatrixDeath, OutOfRangeAsserts) {
  Matrix M(2, 2);
  EXPECT_DEATH((void)M.at(2, 0), "out of range");
}

namespace {
Matrix randomMatrix(size_t Rows, size_t Cols, uint64_t Seed) {
  Rng R(Seed);
  Matrix M(Rows, Cols);
  for (size_t I = 0; I < Rows; ++I)
    for (size_t J = 0; J < Cols; ++J)
      M.at(I, J) = R.uniform(-3, 3);
  return M;
}
} // namespace

TEST(Matrix, RowSpanAliasesStorage) {
  Matrix M = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
  const double *R1 = M.rowSpan(1);
  EXPECT_DOUBLE_EQ(R1[0], 4);
  EXPECT_DOUBLE_EQ(R1[2], 6);
  // The non-const span writes through to the matrix.
  M.rowSpan(0)[1] = 20;
  EXPECT_DOUBLE_EQ(M.at(0, 1), 20);
  // Rows are contiguous in row-major storage.
  EXPECT_EQ(M.rowSpan(1), M.data() + M.cols());
}

// The blocked kernels must be bit-identical to the naive triple loop:
// each output element accumulates its contraction terms in ascending
// index order, exactly as the reference loops below do.

TEST(Matrix, BlockedMultiplyBitIdenticalToNaive) {
  // 70x90 * 90x65 spans multiple 64-wide blocks plus ragged edges.
  Matrix A = randomMatrix(70, 90, 21);
  Matrix B = randomMatrix(90, 65, 22);
  Matrix C = A.multiply(B);
  ASSERT_EQ(C.rows(), 70u);
  ASSERT_EQ(C.cols(), 65u);
  for (size_t I = 0; I < A.rows(); ++I)
    for (size_t J = 0; J < B.cols(); ++J) {
      double Ref = 0;
      for (size_t K = 0; K < A.cols(); ++K)
        Ref += A.at(I, K) * B.at(K, J);
      EXPECT_EQ(std::memcmp(&C.at(I, J), &Ref, sizeof(double)), 0)
          << "C(" << I << "," << J << ") = " << C.at(I, J) << " vs " << Ref;
    }
}

TEST(Matrix, BlockedGramBitIdenticalToNaive) {
  Matrix A = randomMatrix(130, 70, 23);
  Matrix G = A.gram();
  ASSERT_EQ(G.rows(), 70u);
  ASSERT_EQ(G.cols(), 70u);
  for (size_t I = 0; I < A.cols(); ++I)
    for (size_t J = I; J < A.cols(); ++J) {
      double Ref = 0;
      for (size_t R = 0; R < A.rows(); ++R)
        Ref += A.at(R, I) * A.at(R, J);
      EXPECT_EQ(std::memcmp(&G.at(I, J), &Ref, sizeof(double)), 0)
          << "G(" << I << "," << J << ")";
      // The mirrored lower triangle is a copy, not a recomputation.
      EXPECT_EQ(std::memcmp(&G.at(J, I), &G.at(I, J), sizeof(double)), 0);
    }
}

TEST(Matrix, TransposeMultiplyBitIdenticalToNaive) {
  Matrix A = randomMatrix(110, 40, 24);
  Rng R(25);
  std::vector<double> V(110);
  for (double &X : V)
    X = R.uniform(-2, 2);
  std::vector<double> Got = A.transposeMultiply(V);
  ASSERT_EQ(Got.size(), 40u);
  for (size_t C = 0; C < A.cols(); ++C) {
    double Ref = 0;
    for (size_t I = 0; I < A.rows(); ++I)
      Ref += V[I] * A.at(I, C);
    EXPECT_EQ(std::memcmp(&Got[C], &Ref, sizeof(double)), 0) << "col " << C;
  }
}

// The accumulating GEMM kernels seed every output element from C's
// initial contents and add contraction terms in ascending order, so each
// must be bit-identical to the corresponding seeded reference loop.

TEST(GemmAccumulate, PlainProductBitIdenticalToSeededNaive) {
  // 70x90 * 90x65 spans multiple 64-wide blocks plus ragged edges, and a
  // non-zero initial C exercises the seeding contract.
  Matrix A = randomMatrix(70, 90, 31);
  Matrix B = randomMatrix(90, 65, 32);
  Matrix C = randomMatrix(70, 65, 33);
  Matrix Ref = C;
  gemmAccumulate(A.data(), B.data(), C.data(), 70, 90, 65);
  for (size_t I = 0; I < 70; ++I)
    for (size_t J = 0; J < 65; ++J) {
      double Sum = Ref.at(I, J);
      for (size_t K = 0; K < 90; ++K)
        Sum += A.at(I, K) * B.at(K, J);
      EXPECT_EQ(std::memcmp(&C.at(I, J), &Sum, sizeof(double)), 0)
          << "C(" << I << "," << J << ") = " << C.at(I, J) << " vs " << Sum;
    }
}

TEST(GemmAccumulate, BTransposedBitIdenticalToBiasSeededDots) {
  // C = bias-like seed, A (M x K) times B^T with B stored N x K — the
  // batched forward-pass shape.
  Matrix A = randomMatrix(67, 70, 34);
  Matrix B = randomMatrix(65, 70, 35);
  Matrix C = randomMatrix(67, 65, 36);
  Matrix Ref = C;
  gemmBTransposedAccumulate(A.data(), B.data(), C.data(), 67, 70, 65);
  for (size_t I = 0; I < 67; ++I)
    for (size_t J = 0; J < 65; ++J) {
      double Sum = Ref.at(I, J);
      for (size_t K = 0; K < 70; ++K)
        Sum += A.at(I, K) * B.at(J, K);
      EXPECT_EQ(std::memcmp(&C.at(I, J), &Sum, sizeof(double)), 0)
          << "C(" << I << "," << J << ")";
    }
}

TEST(GemmAccumulate, ATransposedBitIdenticalToSampleOrderedOuterProducts) {
  // C += A^T B with A stored K x M — the batched weight-gradient shape,
  // which must equal accumulating the K rank-1 updates one at a time.
  Matrix A = randomMatrix(70, 33, 37);
  Matrix B = randomMatrix(70, 41, 38);
  Matrix C = randomMatrix(33, 41, 39);
  Matrix Ref = C;
  gemmATransposedAccumulate(A.data(), B.data(), C.data(), 33, 70, 41);
  for (size_t K = 0; K < 70; ++K)
    for (size_t M = 0; M < 33; ++M)
      for (size_t N = 0; N < 41; ++N)
        Ref.at(M, N) += A.at(K, M) * B.at(K, N);
  for (size_t M = 0; M < 33; ++M)
    for (size_t N = 0; N < 41; ++N)
      EXPECT_EQ(std::memcmp(&C.at(M, N), &Ref.at(M, N), sizeof(double)), 0)
          << "C(" << M << "," << N << ")";
}

TEST(GemmAccumulate, MatrixMultiplyUsesTheSharedKernel) {
  // Matrix::multiply is the zero-seeded case of gemmAccumulate.
  Matrix A = randomMatrix(12, 9, 40);
  Matrix B = randomMatrix(9, 7, 41);
  Matrix Via = A.multiply(B);
  Matrix Direct(12, 7);
  gemmAccumulate(A.data(), B.data(), Direct.data(), 12, 9, 7);
  EXPECT_DOUBLE_EQ(Via.maxAbsDiff(Direct), 0.0);
}

TEST(VectorOps, PointerDotMatchesVectorDot) {
  std::vector<double> A = {1.5, -2, 3, 0.25};
  std::vector<double> B = {4, 5.5, -6, 8};
  EXPECT_DOUBLE_EQ(stats::dot(A.data(), B.data(), A.size()), dot(A, B));
  EXPECT_DOUBLE_EQ(stats::dot(A.data(), B.data(), 0), 0);
}

TEST(VectorOps, AxpyAccumulatesInPlace) {
  std::vector<double> X = {1, 2, 3};
  std::vector<double> Y = {10, 20, 30};
  stats::axpy(2.0, X.data(), Y.data(), 3);
  EXPECT_EQ(Y, (std::vector<double>{12, 24, 36}));
  stats::axpy(0.0, X.data(), Y.data(), 3);
  EXPECT_EQ(Y, (std::vector<double>{12, 24, 36}));
}
