//===- tests/stats/MatrixTest.cpp - Dense matrix tests ------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Matrix.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::stats;

TEST(Matrix, ConstructionAndIndexing) {
  Matrix M(2, 3, 1.5);
  EXPECT_EQ(M.rows(), 2u);
  EXPECT_EQ(M.cols(), 3u);
  EXPECT_DOUBLE_EQ(M.at(1, 2), 1.5);
  M.at(0, 1) = -2;
  EXPECT_DOUBLE_EQ(M.at(0, 1), -2);
}

TEST(Matrix, FromRows) {
  Matrix M = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(M.rows(), 3u);
  EXPECT_EQ(M.cols(), 2u);
  EXPECT_DOUBLE_EQ(M.at(2, 1), 6);
}

TEST(Matrix, IdentityMultiplicationIsNoop) {
  Matrix M = Matrix::fromRows({{1, 2}, {3, 4}});
  Matrix I = Matrix::identity(2);
  EXPECT_DOUBLE_EQ(M.multiply(I).maxAbsDiff(M), 0.0);
  EXPECT_DOUBLE_EQ(I.multiply(M).maxAbsDiff(M), 0.0);
}

TEST(Matrix, KnownProduct) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}});
  Matrix B = Matrix::fromRows({{5, 6}, {7, 8}});
  Matrix C = A.multiply(B);
  EXPECT_DOUBLE_EQ(C.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(C.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 50);
}

TEST(Matrix, TransposeInvolution) {
  Matrix M = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_DOUBLE_EQ(M.transposed().transposed().maxAbsDiff(M), 0.0);
  EXPECT_DOUBLE_EQ(M.transposed().at(2, 1), 6);
}

TEST(Matrix, MatVec) {
  Matrix M = Matrix::fromRows({{1, 2}, {3, 4}});
  std::vector<double> V = M.multiply(std::vector<double>{1, 1});
  EXPECT_DOUBLE_EQ(V[0], 3);
  EXPECT_DOUBLE_EQ(V[1], 7);
}

TEST(Matrix, RowAndColExtraction) {
  Matrix M = Matrix::fromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(M.row(1), (std::vector<double>{3, 4}));
  EXPECT_EQ(M.col(0), (std::vector<double>{1, 3}));
}

TEST(Matrix, GramMatchesExplicitProduct) {
  Rng R(5);
  Matrix A(7, 4);
  for (size_t I = 0; I < 7; ++I)
    for (size_t J = 0; J < 4; ++J)
      A.at(I, J) = R.gaussian();
  Matrix G = A.gram();
  Matrix Explicit = A.transposed().multiply(A);
  EXPECT_LT(G.maxAbsDiff(Explicit), 1e-12);
}

TEST(Matrix, GramIsSymmetric) {
  Rng R(6);
  Matrix A(5, 3);
  for (size_t I = 0; I < 5; ++I)
    for (size_t J = 0; J < 3; ++J)
      A.at(I, J) = R.uniform(-2, 2);
  Matrix G = A.gram();
  for (size_t I = 0; I < 3; ++I)
    for (size_t J = 0; J < 3; ++J)
      EXPECT_DOUBLE_EQ(G.at(I, J), G.at(J, I));
}

TEST(Matrix, TransposeMultiplyMatchesExplicit) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
  std::vector<double> V = {1, -1, 2};
  std::vector<double> Got = A.transposeMultiply(V);
  EXPECT_DOUBLE_EQ(Got[0], 1 - 3 + 10);
  EXPECT_DOUBLE_EQ(Got[1], 2 - 4 + 12);
}

TEST(VectorOps, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5);
  EXPECT_DOUBLE_EQ(norm2({}), 0);
}

TEST(MatrixDeath, OutOfRangeAsserts) {
  Matrix M(2, 2);
  EXPECT_DEATH((void)M.at(2, 0), "out of range");
}
