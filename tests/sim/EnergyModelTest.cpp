//===- tests/sim/EnergyModelTest.cpp - Ground-truth energy tests ----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/EnergyModel.h"

#include "sim/Kernel.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::pmc;
using namespace slope::sim;

TEST(EnergyModel, ZeroActivityZeroEnergy) {
  EnergyModel E(Platform::intelHaswellServer());
  EXPECT_DOUBLE_EQ(E.dynamicEnergyJoules(ActivityVector()), 0.0);
}

TEST(EnergyModel, EnergyIsPositiveForWork) {
  EnergyModel E(Platform::intelHaswellServer());
  ActivityVector A;
  A[ActivityKind::UopsExecuted] = 1e12;
  EXPECT_GT(E.dynamicEnergyJoules(A), 0.0);
}

TEST(EnergyModel, MemoryEventsCostMoreThanComputeEvents) {
  EnergyModel E(Platform::intelHaswellServer());
  EXPECT_GT(E.weight(ActivityKind::DramReads),
            E.weight(ActivityKind::FpVectorDouble) * 50);
  EXPECT_GT(E.weight(ActivityKind::L3Misses),
            E.weight(ActivityKind::L1DMisses));
}

TEST(EnergyModel, SkylakeScalesBelowHaswellPerEvent) {
  EnergyModel H(Platform::intelHaswellServer());
  EnergyModel S(Platform::intelSkylakeServer());
  // 140 W / 22 cores vs 240 W / 24 cores.
  EXPECT_LT(S.weight(ActivityKind::UopsExecuted),
            H.weight(ActivityKind::UopsExecuted));
}

TEST(EnergyModel, SuperadditivityBoundedByOverlapTerm) {
  // E(A + B) >= E(A) + E(B) - 10% of the smaller side: the concavity is
  // bounded so the paper's energy-additivity premise survives.
  EnergyModel E(Platform::intelHaswellServer());
  Platform P = Platform::intelHaswellServer();
  ActivityVector Compute =
      kernelActivities(KernelKind::MklDgemm, 8192, P);
  ActivityVector Memory = kernelActivities(KernelKind::Stream, 3e8, P);
  double Separate = E.dynamicEnergyJoules(Compute) +
                    E.dynamicEnergyJoules(Memory);
  double Together = E.dynamicEnergyJoules(Compute + Memory);
  EXPECT_LE(Together, Separate + 1e-9);
  EXPECT_GE(Together, Separate * 0.90);
}

TEST(EnergyModel, SameProfileComposesAlmostExactly) {
  // Two copies of the same phase: min(C, M) scales linearly, so the
  // composition is exactly additive.
  EnergyModel E(Platform::intelHaswellServer());
  Platform P = Platform::intelHaswellServer();
  ActivityVector A = kernelActivities(KernelKind::Hpcg, 2000000, P);
  double One = E.dynamicEnergyJoules(A);
  double Two = E.dynamicEnergyJoules(A + A);
  EXPECT_NEAR(Two, 2 * One, 2 * One * 1e-12);
}

TEST(EnergyModel, KernelDynamicPowerIsPlausible) {
  // Dynamic power for sizeable runs stays within (1 W, TDP - idle).
  for (const Platform &P : {Platform::intelHaswellServer(),
                            Platform::intelSkylakeServer()}) {
    EnergyModel E(P);
    for (KernelKind Kind : allKernels()) {
      const KernelSpec &Spec = kernelSpec(Kind);
      double N = static_cast<double>(Spec.SizeMin) * 3;
      ActivityVector A = kernelActivities(Kind, N, P);
      double T = kernelTimeSeconds(Kind, N, P);
      double Power = E.dynamicEnergyJoules(A) / T;
      EXPECT_GT(Power, 1.0) << Spec.Name;
      EXPECT_LT(Power, P.TdpWatts - P.IdlePowerWatts) << Spec.Name;
    }
  }
}

TEST(EnergyModel, ComputeBoundKernelDominatedByComputeEnergy) {
  Platform P = Platform::intelHaswellServer();
  EnergyModel E(P);
  ActivityVector Dgemm = kernelActivities(KernelKind::MklDgemm, 16384, P);
  // Strip the memory-side events: most energy must remain.
  ActivityVector ComputeOnly = Dgemm;
  for (ActivityKind Kind :
       {ActivityKind::Loads, ActivityKind::Stores, ActivityKind::L1DMisses,
        ActivityKind::L2Misses, ActivityKind::L3Misses,
        ActivityKind::DramReads})
    ComputeOnly[Kind] = 0;
  EXPECT_GT(E.dynamicEnergyJoules(ComputeOnly),
            0.5 * E.dynamicEnergyJoules(Dgemm));
}
