//===- tests/sim/ApplicationTest.cpp - Application tests -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/Application.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::sim;

TEST(Application, StringForm) {
  Application App(KernelKind::MklDgemm, 10240);
  EXPECT_EQ(App.str(), "mkl-dgemm(10240)");
}

TEST(Application, ValidityRespectsKernelRange) {
  const KernelSpec &Spec = kernelSpec(KernelKind::MklFft);
  EXPECT_TRUE(Application(KernelKind::MklFft, Spec.SizeMin).isValid());
  EXPECT_TRUE(Application(KernelKind::MklFft, Spec.SizeMax).isValid());
  EXPECT_FALSE(Application(KernelKind::MklFft, Spec.SizeMin - 1).isValid());
  EXPECT_FALSE(Application(KernelKind::MklFft, Spec.SizeMax + 1).isValid());
}

TEST(Application, Equality) {
  Application A(KernelKind::Stream, 100);
  Application B(KernelKind::Stream, 100);
  Application C(KernelKind::Stream, 101);
  Application D(KernelKind::Stress, 100);
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A == C);
  EXPECT_FALSE(A == D);
}

TEST(CompoundApplication, SinglePhaseIsBase) {
  CompoundApplication App(Application(KernelKind::Hpcg, 50000));
  EXPECT_TRUE(App.isBase());
  EXPECT_EQ(App.numPhases(), 1u);
}

TEST(CompoundApplication, TwoPhaseComposition) {
  CompoundApplication App(Application(KernelKind::MklDgemm, 8192),
                          Application(KernelKind::MklFft, 25600));
  EXPECT_FALSE(App.isBase());
  EXPECT_EQ(App.numPhases(), 2u);
  EXPECT_EQ(App.str(), "mkl-dgemm(8192);mkl-fft(25600)");
}

TEST(CompoundApplication, DefaultIsEmpty) {
  CompoundApplication App;
  EXPECT_EQ(App.numPhases(), 0u);
}
