//===- tests/sim/KernelPropertyTest.cpp - Per-kernel invariant sweeps -----------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Parameterized invariants that must hold for EVERY kernel of the
// catalogue on both platforms, at several points of its size range —
// the contract the experiment layer relies on.
//
//===----------------------------------------------------------------------===//

#include "sim/EnergyModel.h"
#include "sim/TestSuite.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::pmc;
using namespace slope::sim;

namespace {
/// Geometric sample points across a kernel's size range.
std::vector<double> samplePoints(const KernelSpec &Spec) {
  double Lo = static_cast<double>(Spec.SizeMin);
  double Hi = static_cast<double>(Spec.SizeMax);
  std::vector<double> Points;
  for (double Frac : {0.0, 0.3, 0.6, 1.0})
    Points.push_back(Lo * std::pow(Hi / Lo, Frac));
  return Points;
}
} // namespace

class KernelInvariants : public ::testing::TestWithParam<KernelKind> {};

TEST_P(KernelInvariants, ActivitiesFiniteAndNonNegative) {
  for (const Platform &P : {Platform::intelHaswellServer(),
                            Platform::intelSkylakeServer()}) {
    const KernelSpec &Spec = kernelSpec(GetParam());
    for (double N : samplePoints(Spec)) {
      ActivityVector A = kernelActivities(GetParam(), N, P);
      for (size_t I = 0; I < NumActivityKinds; ++I) {
        EXPECT_TRUE(std::isfinite(A.at(I)))
            << Spec.Name << " N=" << N << " "
            << activityKindName(static_cast<ActivityKind>(I));
        EXPECT_GE(A.at(I), 0.0) << Spec.Name << " N=" << N;
      }
    }
  }
}

TEST_P(KernelInvariants, CacheHierarchyMonotone) {
  Platform P = Platform::intelHaswellServer();
  const KernelSpec &Spec = kernelSpec(GetParam());
  for (double N : samplePoints(Spec)) {
    ActivityVector A = kernelActivities(GetParam(), N, P);
    EXPECT_GE(A[ActivityKind::L1DMisses], A[ActivityKind::L2Misses] -
                                              A[ActivityKind::ICacheMisses])
        << Spec.Name;
    EXPECT_GE(A[ActivityKind::L2Misses] * 1.0001 + 1,
              A[ActivityKind::L3Misses])
        << Spec.Name;
    EXPECT_GE(A[ActivityKind::Loads] + A[ActivityKind::Stores],
              A[ActivityKind::L1DMisses])
        << Spec.Name;
  }
}

TEST_P(KernelInvariants, FrontendConservation) {
  Platform P = Platform::intelSkylakeServer();
  const KernelSpec &Spec = kernelSpec(GetParam());
  for (double N : samplePoints(Spec)) {
    ActivityVector A = kernelActivities(GetParam(), N, P);
    double Delivered = A[ActivityKind::DsbUops] +
                       A[ActivityKind::MiteUops] + A[ActivityKind::MsUops];
    EXPECT_NEAR(Delivered / A[ActivityKind::UopsIssued], 1.0, 1e-6)
        << Spec.Name;
  }
}

TEST_P(KernelInvariants, TimeStrictlyIncreasingAcrossRange) {
  Platform P = Platform::intelHaswellServer();
  const KernelSpec &Spec = kernelSpec(GetParam());
  std::vector<double> Points = samplePoints(Spec);
  for (size_t I = 0; I + 1 < Points.size(); ++I)
    EXPECT_LT(kernelTimeSeconds(GetParam(), Points[I], P),
              kernelTimeSeconds(GetParam(), Points[I + 1], P) + 1e-9)
        << Spec.Name;
}

TEST_P(KernelInvariants, EnergyScalesWithWork) {
  Platform P = Platform::intelSkylakeServer();
  EnergyModel E(P);
  const KernelSpec &Spec = kernelSpec(GetParam());
  std::vector<double> Points = samplePoints(Spec);
  double Previous = 0;
  for (double N : Points) {
    double Joules = E.dynamicEnergyJoules(kernelActivities(GetParam(), N, P));
    EXPECT_GT(Joules, Previous) << Spec.Name << " N=" << N;
    Previous = Joules;
  }
}

TEST_P(KernelInvariants, DynamicPowerWithinEnvelopeAtScale) {
  // At sizes with >= 1 s runtime, dynamic power must stay within the
  // machine's physical envelope.
  for (const Platform &P : {Platform::intelHaswellServer(),
                            Platform::intelSkylakeServer()}) {
    EnergyModel E(P);
    const KernelSpec &Spec = kernelSpec(GetParam());
    for (double N : samplePoints(Spec)) {
      double T = kernelTimeSeconds(GetParam(), N, P);
      if (T < 1.0)
        continue;
      double Power =
          E.dynamicEnergyJoules(kernelActivities(GetParam(), N, P)) / T;
      EXPECT_GT(Power, 0.5) << Spec.Name << " N=" << N;
      EXPECT_LT(Power, P.TdpWatts) << Spec.Name << " N=" << N;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelInvariants, ::testing::ValuesIn(allKernels()),
    [](const ::testing::TestParamInfo<KernelKind> &Info) {
      std::string Name = kernelSpec(Info.param).Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

// --- NPB class-size mapping.

TEST(NpbClassSize, KnownClassDimensions) {
  auto CgA = npbClassSize(KernelKind::NpbCg, 'A');
  ASSERT_TRUE(bool(CgA));
  EXPECT_EQ(*CgA, 14000u);
  auto EpB = npbClassSize(KernelKind::NpbEp, 'B');
  ASSERT_TRUE(bool(EpB));
  EXPECT_EQ(*EpB, 1073741824ull);
  auto FtC = npbClassSize(KernelKind::NpbFt, 'C');
  ASSERT_TRUE(bool(FtC));
  EXPECT_EQ(*FtC, 134217728ull);
}

TEST(NpbClassSize, ClassesGrowMonotonically) {
  for (KernelKind Kind : {KernelKind::NpbCg, KernelKind::NpbMg,
                          KernelKind::NpbFt, KernelKind::NpbEp}) {
    uint64_t Previous = 0;
    for (char Class : {'A', 'B', 'C'}) {
      auto Size = npbClassSize(Kind, Class);
      if (!Size)
        continue; // Some classes exceed a kernel's modeled range.
      EXPECT_GE(*Size, Previous) << kernelSpec(Kind).Name << Class;
      Previous = *Size;
    }
  }
}

TEST(NpbClassSize, ClassSizesAreValidApplications) {
  for (KernelKind Kind : {KernelKind::NpbCg, KernelKind::NpbMg,
                          KernelKind::NpbFt, KernelKind::NpbEp})
    for (char Class : {'A', 'B', 'C'}) {
      auto Size = npbClassSize(Kind, Class);
      if (Size) {
        EXPECT_TRUE(Application(Kind, *Size).isValid())
            << kernelSpec(Kind).Name << Class;
      }
    }
}

TEST(NpbClassSize, RejectsNonNpbKernels) {
  auto Size = npbClassSize(KernelKind::MklDgemm, 'A');
  ASSERT_FALSE(bool(Size));
  EXPECT_NE(Size.error().message().find("not an NPB"), std::string::npos);
}

TEST(NpbClassSize, RejectsUnknownClass) {
  auto Size = npbClassSize(KernelKind::NpbCg, 'Z');
  ASSERT_FALSE(bool(Size));
}
