//===- tests/sim/KernelTest.cpp - Kernel model tests ---------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/Kernel.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::pmc;
using namespace slope::sim;

TEST(WorkTerm, PowerLawEvaluation) {
  WorkTerm T{2.0, 3.0, 0.0};
  EXPECT_DOUBLE_EQ(T.eval(10), 2000);
}

TEST(WorkTerm, LogFactor) {
  WorkTerm T{1.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(T.eval(8), 3.0);
}

TEST(WorkTerm, ZeroCoefShortCircuits) {
  WorkTerm T{0.0, 5.0, 2.0};
  EXPECT_DOUBLE_EQ(T.eval(1e9), 0.0);
}

TEST(KernelSpec, TableCoversAllKinds) {
  EXPECT_EQ(allKernels().size(), NumKernelKinds);
  for (KernelKind Kind : allKernels()) {
    const KernelSpec &Spec = kernelSpec(Kind);
    EXPECT_EQ(Spec.Kind, Kind);
    EXPECT_NE(Spec.Name, nullptr);
    EXPECT_LT(Spec.SizeMin, Spec.SizeMax);
    EXPECT_GT(Spec.ParallelEfficiency, 0.0);
    EXPECT_LE(Spec.ParallelEfficiency, 1.0);
    EXPECT_GE(Spec.ContextIntensity, 0.0);
  }
}

TEST(KernelSpec, MklKernelsHaveLowContextIntensity) {
  // The premise of the paper's Class B finding: optimized MKL kernels
  // barely disturb execution context.
  EXPECT_LT(kernelSpec(KernelKind::MklDgemm).ContextIntensity, 0.1);
  EXPECT_LT(kernelSpec(KernelKind::MklFft).ContextIntensity, 0.1);
  EXPECT_GT(kernelSpec(KernelKind::QuickSort).ContextIntensity, 0.8);
}

TEST(KernelActivities, DgemmFlopsMatchAlgorithm) {
  Platform P = Platform::intelHaswellServer();
  ActivityVector A = kernelActivities(KernelKind::MklDgemm, 1000, P);
  EXPECT_NEAR(A[ActivityKind::FpVectorDouble], 2e9, 2e7); // 2 N^3.
  EXPECT_DOUBLE_EQ(A[ActivityKind::FpScalarDouble], 0.0);
}

TEST(KernelActivities, ActivitiesAreNonNegativeEverywhere) {
  Platform P = Platform::intelSkylakeServer();
  for (KernelKind Kind : allKernels()) {
    const KernelSpec &Spec = kernelSpec(Kind);
    uint64_t Mid = Spec.SizeMin + (Spec.SizeMax - Spec.SizeMin) / 4;
    ActivityVector A = kernelActivities(Kind, static_cast<double>(Mid), P);
    for (size_t I = 0; I < NumActivityKinds; ++I)
      EXPECT_GE(A.at(I), 0.0)
          << Spec.Name << " " << activityKindName(static_cast<ActivityKind>(I));
  }
}

TEST(KernelActivities, UopsExecutedEqualsPortSum) {
  Platform P = Platform::intelHaswellServer();
  ActivityVector A = kernelActivities(KernelKind::Stencil2D, 2048, P);
  double PortSum = A[ActivityKind::Port0] + A[ActivityKind::Port1] +
                   A[ActivityKind::Port2] + A[ActivityKind::Port3] +
                   A[ActivityKind::Port4] + A[ActivityKind::Port5] +
                   A[ActivityKind::Port6] + A[ActivityKind::Port7];
  EXPECT_NEAR(A[ActivityKind::UopsExecuted], PortSum, PortSum * 1e-12);
}

TEST(KernelActivities, UopDeliveryPathsSumToIssued) {
  Platform P = Platform::intelHaswellServer();
  ActivityVector A = kernelActivities(KernelKind::NpbCg, 1000000, P);
  double Delivered = A[ActivityKind::DsbUops] + A[ActivityKind::MiteUops] +
                     A[ActivityKind::MsUops];
  EXPECT_NEAR(Delivered, A[ActivityKind::UopsIssued],
              A[ActivityKind::UopsIssued] * 1e-9);
}

TEST(KernelActivities, MonotoneInProblemSize) {
  Platform P = Platform::intelHaswellServer();
  for (KernelKind Kind : allKernels()) {
    const KernelSpec &Spec = kernelSpec(Kind);
    double Small = static_cast<double>(Spec.SizeMin) * 2;
    double Large = Small * 4;
    if (Large > static_cast<double>(Spec.SizeMax))
      continue;
    ActivityVector A1 = kernelActivities(Kind, Small, P);
    ActivityVector A2 = kernelActivities(Kind, Large, P);
    EXPECT_LT(A1[ActivityKind::Instructions],
              A2[ActivityKind::Instructions])
        << Spec.Name;
  }
}

TEST(KernelTime, PositiveAndMonotone) {
  Platform P = Platform::intelSkylakeServer();
  for (KernelKind Kind : allKernels()) {
    const KernelSpec &Spec = kernelSpec(Kind);
    double Small = static_cast<double>(Spec.SizeMin) * 2;
    double Large = Small * 4;
    if (Large > static_cast<double>(Spec.SizeMax))
      continue;
    double T1 = kernelTimeSeconds(Kind, Small, P);
    double T2 = kernelTimeSeconds(Kind, Large, P);
    EXPECT_GT(T1, 0.0) << Spec.Name;
    EXPECT_LE(T1, T2) << Spec.Name;
  }
}

TEST(KernelTime, DgemmNearComputeBound) {
  // MKL DGEMM should run within a small factor of peak flops.
  Platform P = Platform::intelHaswellServer();
  double N = 16384;
  double T = kernelTimeSeconds(KernelKind::MklDgemm, N, P);
  double Ideal = 2 * N * N * N / (P.peakGflops() * 1e9);
  EXPECT_GT(T, Ideal * 0.9);
  EXPECT_LT(T, Ideal * 3.0);
}

TEST(KernelTime, StreamNearBandwidthBound) {
  Platform P = Platform::intelHaswellServer();
  double N = 1e9; // 24 GB working set.
  double T = kernelTimeSeconds(KernelKind::Stream, N, P);
  double IdealMemTime = 24.0 * N / (P.MemBandwidthGBs * 1e9);
  EXPECT_GT(T, IdealMemTime * 0.5);
  EXPECT_LT(T, IdealMemTime * 6.0);
}

TEST(KernelTime, FasterPlatformIsFaster) {
  Platform H = Platform::intelHaswellServer();
  Platform Slow = H;
  Slow.CoresPerSocket = 4;
  Slow.MemBandwidthGBs = 30;
  for (KernelKind Kind : {KernelKind::MklDgemm, KernelKind::SpMV}) {
    const KernelSpec &Spec = kernelSpec(Kind);
    double N = static_cast<double>(Spec.SizeMin) * 3;
    EXPECT_LT(kernelTimeSeconds(Kind, N, H),
              kernelTimeSeconds(Kind, N, Slow));
  }
}
