//===- tests/sim/TraceModeTest.cpp - Sampled-trace emission tests --------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include "pmc/PlatformEvents.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace slope;
using namespace slope::sim;

namespace {

/// Restores automatic global-pool sizing when a test returns.
struct ThreadCountGuard {
  ~ThreadCountGuard() { ThreadPool::setGlobalThreadCount(0); }
};

CompoundApplication testApp() {
  return CompoundApplication(Application(KernelKind::MklDgemm, 6000),
                             Application(KernelKind::Stream, 12000000));
}

void expectActivitiesEq(const pmc::ActivityVector &A,
                        const pmc::ActivityVector &B) {
  for (size_t I = 0; I < pmc::NumActivityKinds; ++I)
    ASSERT_EQ(A.at(I), B.at(I)) << "activity " << I;
}

/// The per-window meter-noise factor: PowerW divided by the window's true
/// model power. A pure function of (RunSeed, window index) by contract.
double powerJitter(const Machine &M, const ExecutionTrace &Trace, size_t W) {
  const TraceWindow &Win = Trace.Windows[W];
  const double TrueJ = M.energyModel().dynamicEnergyJoules(Win.Activities);
  EXPECT_GT(TrueJ, 0.0);
  EXPECT_GT(Win.DtSec, 0.0);
  return Win.PowerW * Win.DtSec / TrueJ;
}

} // namespace

TEST(TraceMode, EmbeddedExecutionBitIdenticalToRunWithSeed) {
  // Trace mode observes a run, it never perturbs one: the embedded
  // Execution must be bit-identical to runWithSeed() on the same seed.
  Machine M1(Platform::intelSkylakeServer(), 7);
  Machine M2(Platform::intelSkylakeServer(), 7);
  ExecutionTrace Trace = M1.runTrace(testApp(), /*RunSeed=*/0x5EED, 24);
  Execution Ref = M2.runWithSeed(testApp(), /*RunSeed=*/0x5EED);

  ASSERT_EQ(Trace.Exec.RunSeed, Ref.RunSeed);
  ASSERT_EQ(Trace.Exec.TrueDynamicEnergyJ, Ref.TrueDynamicEnergyJ);
  ASSERT_EQ(Trace.Exec.Phases.size(), Ref.Phases.size());
  for (size_t P = 0; P < Ref.Phases.size(); ++P) {
    ASSERT_EQ(Trace.Exec.Phases[P].TimeSec, Ref.Phases[P].TimeSec);
    ASSERT_EQ(Trace.Exec.Phases[P].ContextIntensity,
              Ref.Phases[P].ContextIntensity);
    expectActivitiesEq(Trace.Exec.Phases[P].Activities,
                       Ref.Phases[P].Activities);
  }
}

TEST(TraceMode, StatefulOverloadAdvancesLikeRun) {
  // runTrace(App, N) must consume the same run-counter seed run(App)
  // would, so interleaving trace and scalar collection keeps machines
  // reproducible.
  Machine M1(Platform::intelSkylakeServer(), 11);
  Machine M2(Platform::intelSkylakeServer(), 11);
  ExecutionTrace Trace = M1.runTrace(testApp(), 16);
  Execution Ref = M2.run(testApp());
  ASSERT_EQ(Trace.Exec.RunSeed, Ref.RunSeed);
  ASSERT_EQ(Trace.Exec.TrueDynamicEnergyJ, Ref.TrueDynamicEnergyJ);

  // And the NEXT run on both machines still agrees.
  ASSERT_EQ(M1.run(testApp()).RunSeed, M2.run(testApp()).RunSeed);
}

TEST(TraceMode, WindowSumsRecoverRunTotals) {
  Machine M(Platform::intelHaswellServer(), 13);
  ExecutionTrace Trace = M.runTrace(testApp(), 0xFACE, 40);
  ASSERT_EQ(Trace.windowCount(), 40u);

  double DtSum = 0;
  pmc::ActivityVector ActivitySum;
  for (const TraceWindow &Win : Trace.Windows) {
    ASSERT_GE(Win.DtSec, 0.0);
    DtSum += Win.DtSec;
    ActivitySum += Win.Activities;
  }
  EXPECT_NEAR(DtSum, Trace.Exec.totalTimeSec(),
              1e-9 * Trace.Exec.totalTimeSec());
  pmc::ActivityVector Total = Trace.Exec.totalActivities();
  for (size_t I = 0; I < pmc::NumActivityKinds; ++I)
    EXPECT_NEAR(ActivitySum.at(I), Total.at(I),
                1e-9 * std::max(1.0, Total.at(I)))
        << "activity " << I;

  // Window boundaries are contiguous and ordered.
  for (size_t W = 1; W < Trace.windowCount(); ++W)
    EXPECT_NEAR(Trace.Windows[W].StartSec,
                Trace.Windows[W - 1].StartSec + Trace.Windows[W - 1].DtSec,
                1e-12);
}

TEST(TraceMode, PowerJitterStreamInvariantUnderWindowCount) {
  // The meter-noise stream is drawn from a fork tagged by the window
  // index alone, so window W's jitter factor is a pure function of
  // (RunSeed, W) — slicing the same run into 16 or 64 windows must not
  // shift any window's draw, even though the window boundaries (and so
  // the activities under them) all move.
  Machine M(Platform::intelSkylakeServer(), 17);
  ExecutionTrace Coarse = M.runTrace(testApp(), 0xABCD, 16);
  ExecutionTrace Fine = M.runTrace(testApp(), 0xABCD, 64);
  ASSERT_EQ(Coarse.windowCount(), 16u);
  ASSERT_EQ(Fine.windowCount(), 64u);
  for (size_t W = 0; W < Coarse.windowCount(); ++W)
    EXPECT_DOUBLE_EQ(powerJitter(M, Coarse, W), powerJitter(M, Fine, W))
        << "window " << W;
}

TEST(TraceMode, DeterministicAcrossThreadCounts) {
  ThreadCountGuard Guard;
  Machine M1(Platform::intelSkylakeServer(), 19);
  Machine M2(Platform::intelSkylakeServer(), 19);
  ThreadPool::setGlobalThreadCount(1);
  ExecutionTrace A = M1.runTrace(testApp(), 0xBEEF, 32);
  ThreadPool::setGlobalThreadCount(8);
  ExecutionTrace B = M2.runTrace(testApp(), 0xBEEF, 32);
  ASSERT_EQ(A.windowCount(), B.windowCount());
  for (size_t W = 0; W < A.windowCount(); ++W) {
    ASSERT_EQ(A.Windows[W].StartSec, B.Windows[W].StartSec);
    ASSERT_EQ(A.Windows[W].DtSec, B.Windows[W].DtSec);
    ASSERT_EQ(A.Windows[W].PowerW, B.Windows[W].PowerW);
    ASSERT_EQ(A.Windows[W].ContextIntensity, B.Windows[W].ContextIntensity);
    expectActivitiesEq(A.Windows[W].Activities, B.Windows[W].Activities);
  }
}

TEST(TraceMode, WindowEnergySumTracksTrueEnergy) {
  // Sampled window energies integrate to the run's true dynamic energy
  // up to the lognormal meter noise (sigma 3% per window; the mean over
  // 60 windows concentrates well inside 5%).
  Machine M(Platform::intelSkylakeServer(), 23);
  ExecutionTrace Trace = M.runTrace(testApp(), 0xD1CE, 60);
  double SampledJ = 0;
  for (size_t W = 0; W < Trace.windowCount(); ++W)
    SampledJ += Trace.windowEnergyJ(W);
  EXPECT_NEAR(SampledJ, Trace.Exec.TrueDynamicEnergyJ,
              0.05 * Trace.Exec.TrueDynamicEnergyJ);
}

TEST(TraceMode, ReadCountersWindowSumsTrackWholeRunCounter) {
  Machine M(Platform::intelSkylakeServer(), 29);
  std::vector<pmc::EventId> Events;
  for (const std::string &Name :
       {pmc::skylakePaNames()[0], pmc::skylakePaNames()[1],
        pmc::skylakePaNames()[3]})
    Events.push_back(*M.registry().lookup(Name));

  ExecutionTrace Trace = M.runTrace(testApp(), 0xC0DE, 48);
  std::vector<double> Sum(Events.size(), 0.0);
  for (size_t W = 0; W < Trace.windowCount(); ++W) {
    std::vector<double> Deltas = M.readCountersWindow(Events, Trace, W);
    ASSERT_EQ(Deltas.size(), Events.size());
    for (size_t I = 0; I < Events.size(); ++I)
      Sum[I] += Deltas[I];
  }
  for (size_t I = 0; I < Events.size(); ++I) {
    const double WholeRun = M.readCounter(Events[I], Trace.Exec);
    ASSERT_GT(WholeRun, 0.0);
    // Per-window observation noise is independent across windows, so the
    // sum concentrates around the whole-run count (itself one more noisy
    // observation of the same latent activities).
    EXPECT_NEAR(Sum[I], WholeRun, 0.10 * WholeRun) << "event " << I;
  }
}

TEST(TraceMode, ReadCountersWindowIsDeterministic) {
  Machine M(Platform::intelSkylakeServer(), 31);
  std::vector<pmc::EventId> Events = {
      *M.registry().lookup(pmc::skylakePaNames()[0])};
  ExecutionTrace Trace = M.runTrace(testApp(), 0xF00D, 12);
  for (size_t W = 0; W < Trace.windowCount(); ++W) {
    std::vector<double> A = M.readCountersWindow(Events, Trace, W);
    double Raw = 0;
    M.readCountersWindow(Events.data(), Events.size(), Trace, W, &Raw);
    ASSERT_EQ(A.size(), 1u);
    EXPECT_EQ(A[0], Raw);
  }
}
