//===- tests/sim/SynthAlgorithmTest.cpp - Batched synthesis properties ----------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Property suite for the batched counter-synthesis engine: the batched
// kernel must reproduce the per-event readCounter reference bit for bit
// across platforms, phase counts, and event subsets, and the batch run
// APIs must reproduce a serial sequence of run() calls at any thread
// count. All comparisons are exact (EXPECT_EQ on doubles), not tolerance
// based — the engine's contract is bit-identity, not approximation.
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include "pmc/PlatformEvents.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace slope;
using namespace slope::pmc;
using namespace slope::sim;

namespace {

/// Restores the process-wide synthesis kernel on scope exit so a test
/// that pins one kernel does not leak it into later tests.
struct SynthAlgoGuard {
  SynthAlgorithm Saved = defaultSynthAlgorithm();
  ~SynthAlgoGuard() { setDefaultSynthAlgorithm(Saved); }
};

/// Restores the global pool configuration on scope exit.
struct ThreadCountGuard {
  ~ThreadCountGuard() { ThreadPool::setGlobalThreadCount(0); }
};

/// A compound with \p NumPhases alternating kernels (exercises both the
/// stack-hoisted phase views and, past 32 phases, the fallback path).
CompoundApplication longCompound(size_t NumPhases) {
  CompoundApplication App;
  for (size_t I = 0; I < NumPhases; ++I)
    App.Phases.push_back(I % 2 == 0
                             ? Application(KernelKind::MklDgemm, 4000 + I)
                             : Application(KernelKind::Stream, 4e8));
  return App;
}

void expectBatchedMatchesNaive(Platform P, const CompoundApplication &App,
                               uint64_t Seed) {
  SynthAlgoGuard Guard;
  Machine M(std::move(P), Seed);
  Execution E = M.run(App);
  std::vector<EventId> Ids = M.registry().allEvents();

  setDefaultSynthAlgorithm(SynthAlgorithm::Batched);
  std::vector<double> Batched = M.readCountersBatch(Ids, E);
  setDefaultSynthAlgorithm(SynthAlgorithm::Naive);
  std::vector<double> Naive = M.readCountersBatch(Ids, E);

  ASSERT_EQ(Batched.size(), Ids.size());
  for (size_t I = 0; I < Ids.size(); ++I) {
    EXPECT_EQ(Batched[I], M.readCounter(Ids[I], E))
        << "batched mismatch for " << M.registry().event(Ids[I]).Name;
    EXPECT_EQ(Naive[I], M.readCounter(Ids[I], E))
        << "naive dispatch mismatch for "
        << M.registry().event(Ids[I]).Name;
  }
}

} // namespace

TEST(SynthAlgorithm, DefaultIsBatchedAndSelectorRoundTrips) {
  SynthAlgoGuard Guard;
  setDefaultSynthAlgorithm(SynthAlgorithm::Naive);
  EXPECT_EQ(defaultSynthAlgorithm(), SynthAlgorithm::Naive);
  setDefaultSynthAlgorithm(SynthAlgorithm::Batched);
  EXPECT_EQ(defaultSynthAlgorithm(), SynthAlgorithm::Batched);
}

TEST(SynthAlgorithm, BatchedMatchesNaiveOnHaswellBaseApp) {
  expectBatchedMatchesNaive(
      Platform::intelHaswellServer(),
      CompoundApplication(Application(KernelKind::MklDgemm, 8192)), 101);
}

TEST(SynthAlgorithm, BatchedMatchesNaiveOnSkylakeBaseApp) {
  expectBatchedMatchesNaive(
      Platform::intelSkylakeServer(),
      CompoundApplication(Application(KernelKind::MklFft, 25600)), 102);
}

TEST(SynthAlgorithm, BatchedMatchesNaiveOnTwoPhaseCompound) {
  expectBatchedMatchesNaive(
      Platform::intelHaswellServer(),
      CompoundApplication(Application(KernelKind::MklDgemm, 6000),
                          Application(KernelKind::QuickSort, 1u << 24)),
      103);
}

TEST(SynthAlgorithm, BatchedMatchesNaiveOnFivePhaseCompound) {
  expectBatchedMatchesNaive(Platform::intelSkylakeServer(), longCompound(5),
                            104);
}

TEST(SynthAlgorithm, BatchedMatchesNaivePastPhaseHoistCapacity) {
  // 40 phases exceeds the kernel's 32-slot stack hoist, forcing the
  // allocation-free direct-access fallback.
  expectBatchedMatchesNaive(Platform::intelHaswellServer(), longCompound(40),
                            105);
}

TEST(SynthAlgorithm, ArbitrarySubsetsAndOrdersMatch) {
  SynthAlgoGuard Guard;
  setDefaultSynthAlgorithm(SynthAlgorithm::Batched);
  Machine M(Platform::intelSkylakeServer(), 106);
  Execution E = M.run(CompoundApplication(
      Application(KernelKind::MklDgemm, 9000),
      Application(KernelKind::MonteCarlo, 1u << 22)));

  std::vector<EventId> All = M.registry().allEvents();
  // Every 7th event, in reverse order — batch output must follow the
  // request order, not the registry order.
  std::vector<EventId> Subset;
  for (size_t I = 0; I < All.size(); I += 7)
    Subset.push_back(All[I]);
  std::reverse(Subset.begin(), Subset.end());

  std::vector<double> Batch = M.readCountersBatch(Subset, E);
  for (size_t I = 0; I < Subset.size(); ++I)
    EXPECT_EQ(Batch[I], M.readCounter(Subset[I], E));
}

TEST(SynthAlgorithm, SingleEventAndRepeatedReadsAreStable) {
  SynthAlgoGuard Guard;
  setDefaultSynthAlgorithm(SynthAlgorithm::Batched);
  Machine M(Platform::intelHaswellServer(), 107);
  Execution E = M.run(Application(KernelKind::Stream, 6e8));
  EventId Id = *M.registry().lookup("UOPS_EXECUTED_CORE");
  double A = 0, B = 0;
  M.readCountersBatch(&Id, 1, E, &A);
  M.readCountersBatch(&Id, 1, E, &B);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A, M.readCounter(Id, E));
}

TEST(SynthAlgorithm, RunWithSeedReproducesRun) {
  Machine A(Platform::intelHaswellServer(), 108);
  Machine B(Platform::intelHaswellServer(), 108);
  CompoundApplication App(Application(KernelKind::MklDgemm, 7000),
                          Application(KernelKind::Stencil2D, 3000));
  std::vector<uint64_t> Seeds = B.forkRunSeeds(3);
  for (uint64_t Seed : Seeds) {
    Execution Ea = A.run(App);
    Execution Eb = B.runWithSeed(App, Seed);
    EXPECT_EQ(Ea.RunSeed, Eb.RunSeed);
    EXPECT_EQ(Ea.TrueDynamicEnergyJ, Eb.TrueDynamicEnergyJ);
    ASSERT_EQ(Ea.Phases.size(), Eb.Phases.size());
    for (size_t P = 0; P < Ea.Phases.size(); ++P) {
      EXPECT_EQ(Ea.Phases[P].TimeSec, Eb.Phases[P].TimeSec);
      EXPECT_EQ(Ea.Phases[P].ContextIntensity,
                Eb.Phases[P].ContextIntensity);
      for (size_t K = 0; K < NumActivityKinds; ++K)
        EXPECT_EQ(Ea.Phases[P].Activities.at(K),
                  Eb.Phases[P].Activities.at(K));
    }
  }
}

TEST(SynthAlgorithm, RunWithSeedDoesNotAdvanceMachineState) {
  Machine A(Platform::intelHaswellServer(), 109);
  Machine B(Platform::intelHaswellServer(), 109);
  Application App(KernelKind::MklDgemm, 8000);
  // Interleave pure runs on B; its counter-driven stream must not move.
  (void)B.runWithSeed(CompoundApplication(App), 0xDEAD);
  (void)B.runWithSeed(CompoundApplication(App), 0xBEEF);
  EXPECT_EQ(A.run(App).RunSeed, B.run(App).RunSeed);
}

TEST(SynthAlgorithm, RunBatchMatchesSerialRunsAtAnyThreadCount) {
  ThreadCountGuard Guard;
  CompoundApplication App(Application(KernelKind::MklDgemm, 6000),
                          Application(KernelKind::MklFft, 20000));
  Machine Serial(Platform::intelSkylakeServer(), 110);
  std::vector<Execution> Reference;
  for (int I = 0; I < 6; ++I)
    Reference.push_back(Serial.run(App));

  for (unsigned Threads : {1u, 2u, 8u}) {
    ThreadPool::setGlobalThreadCount(Threads);
    Machine M(Platform::intelSkylakeServer(), 110);
    std::vector<Execution> Batch = M.runBatch(App, 6);
    ASSERT_EQ(Batch.size(), Reference.size());
    for (size_t I = 0; I < Batch.size(); ++I) {
      EXPECT_EQ(Batch[I].RunSeed, Reference[I].RunSeed);
      EXPECT_EQ(Batch[I].TrueDynamicEnergyJ,
                Reference[I].TrueDynamicEnergyJ);
    }
    // The batch must also leave the machine's run counter where the
    // serial scan would: the next run continues the same seed sequence.
    Execution Next = M.run(App);
    Machine Twin(Platform::intelSkylakeServer(), 110);
    for (int I = 0; I < 6; ++I)
      (void)Twin.run(App);
    EXPECT_EQ(Next.RunSeed, Twin.run(App).RunSeed);
  }
}

TEST(SynthAlgorithm, BatchedCountersIdenticalAcrossThreadCounts) {
  ThreadCountGuard PoolGuard;
  SynthAlgoGuard AlgoGuard;
  setDefaultSynthAlgorithm(SynthAlgorithm::Batched);
  std::vector<std::vector<double>> PerThreadCounts;
  for (unsigned Threads : {1u, 2u, 8u}) {
    ThreadPool::setGlobalThreadCount(Threads);
    Machine M(Platform::intelHaswellServer(), 111);
    std::vector<Execution> Execs =
        M.runBatch(CompoundApplication(Application(KernelKind::MklDgemm, 8000)),
                   4);
    std::vector<EventId> Ids = M.registry().allEvents();
    std::vector<double> Counts;
    for (const Execution &E : Execs) {
      std::vector<double> C = M.readCountersBatch(Ids, E);
      Counts.insert(Counts.end(), C.begin(), C.end());
    }
    PerThreadCounts.push_back(std::move(Counts));
  }
  EXPECT_EQ(PerThreadCounts[0], PerThreadCounts[1]);
  EXPECT_EQ(PerThreadCounts[0], PerThreadCounts[2]);
}
