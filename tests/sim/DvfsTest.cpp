//===- tests/sim/DvfsTest.cpp - Optional clock-model tests ----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include "sim/TestSuite.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::pmc;
using namespace slope::sim;

TEST(TimeBreakdown, ComponentsComposeToTotal) {
  Platform P = Platform::intelHaswellServer();
  TimeBreakdown B =
      kernelTimeBreakdown(KernelKind::MklDgemm, 12000, P);
  EXPECT_GT(B.ComputeSec, 0);
  EXPECT_GE(B.MemorySec, 0);
  EXPECT_GE(B.TotalSec, std::max(B.ComputeSec, B.MemorySec));
  EXPECT_DOUBLE_EQ(B.TotalSec,
                   kernelTimeSeconds(KernelKind::MklDgemm, 12000, P));
}

TEST(TimeBreakdown, MemorySharesSeparateKernelClasses) {
  Platform P = Platform::intelSkylakeServer();
  double Dgemm =
      kernelTimeBreakdown(KernelKind::MklDgemm, 16000, P).memoryShare();
  double Stream =
      kernelTimeBreakdown(KernelKind::Stream, 2000000000ull, P)
          .memoryShare();
  EXPECT_LT(Dgemm, 0.3);
  EXPECT_GT(Stream, 0.7);
}

TEST(Dvfs, DisabledByDefaultKeepsCyclesAtBaseClock) {
  Platform P = Platform::intelHaswellServer();
  ASSERT_FALSE(P.DvfsEnabled);
  ActivityVector A = kernelActivities(KernelKind::MklDgemm, 8000, P);
  EXPECT_DOUBLE_EQ(A[ActivityKind::CoreCycles],
                   A[ActivityKind::RefCycles]);
}

TEST(Dvfs, ComputeDenseKernelThrottles) {
  Platform P = Platform::intelHaswellServer();
  P.DvfsEnabled = true;
  ActivityVector A = kernelActivities(KernelKind::MklDgemm, 8000, P);
  // AVX license: core clock below TSC rate.
  EXPECT_LT(A[ActivityKind::CoreCycles], A[ActivityKind::RefCycles]);
  EXPECT_GT(A[ActivityKind::CoreCycles],
            A[ActivityKind::RefCycles] * P.AvxThrottle * 0.99);
}

TEST(Dvfs, MemoryBoundKernelTurbos) {
  Platform P = Platform::intelHaswellServer();
  P.DvfsEnabled = true;
  ActivityVector A =
      kernelActivities(KernelKind::Stream, 2000000000ull, P);
  EXPECT_GT(A[ActivityKind::CoreCycles], A[ActivityKind::RefCycles]);
  EXPECT_LT(A[ActivityKind::CoreCycles],
            A[ActivityKind::RefCycles] * P.TurboBoostMax * 1.01);
}

TEST(Dvfs, RefCyclesUnaffectedByClockModel) {
  Platform Fixed = Platform::intelHaswellServer();
  Platform WithDvfs = Fixed;
  WithDvfs.DvfsEnabled = true;
  ActivityVector A = kernelActivities(KernelKind::MklFft, 20000, Fixed);
  ActivityVector B = kernelActivities(KernelKind::MklFft, 20000, WithDvfs);
  EXPECT_DOUBLE_EQ(A[ActivityKind::RefCycles],
                   B[ActivityKind::RefCycles]);
}

TEST(Dvfs, RunToRunClockWanderOnlyWhenEnabled) {
  Platform WithDvfs = Platform::intelHaswellServer();
  WithDvfs.DvfsEnabled = true;
  Machine M(WithDvfs, 7);
  Application App(KernelKind::MklDgemm, 10000);
  // Ratio of core to ref cycles varies run to run under the wander.
  Execution E1 = M.run(App);
  Execution E2 = M.run(App);
  double R1 = E1.totalActivities()[ActivityKind::CoreCycles] /
              E1.totalActivities()[ActivityKind::RefCycles];
  double R2 = E2.totalActivities()[ActivityKind::CoreCycles] /
              E2.totalActivities()[ActivityKind::RefCycles];
  EXPECT_NE(R1, R2);

  Machine Fixed(Platform::intelHaswellServer(), 7);
  Execution F1 = Fixed.run(App);
  double RFixed = F1.totalActivities()[ActivityKind::CoreCycles] /
                  F1.totalActivities()[ActivityKind::RefCycles];
  EXPECT_DOUBLE_EQ(RFixed, 1.0);
}

TEST(Dvfs, BaselineExperimentsUntouched) {
  // Guard: enabling the model must be a strict opt-in — the default
  // platforms must produce bit-identical activities with the flag off.
  Platform P = Platform::intelSkylakeServer();
  ActivityVector A = kernelActivities(KernelKind::MklDgemm, 10000, P);
  Platform Q = Platform::intelSkylakeServer();
  ActivityVector B = kernelActivities(KernelKind::MklDgemm, 10000, Q);
  for (size_t I = 0; I < NumActivityKinds; ++I)
    EXPECT_DOUBLE_EQ(A.at(I), B.at(I));
}
