//===- tests/sim/CacheModelTest.cpp - Cache model tests ------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/CacheModel.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::sim;

namespace {
MemoryProfile profile(double Accesses, double WsBytes, double Locality) {
  MemoryProfile P;
  P.Accesses = Accesses;
  P.WorkingSetBytes = WsBytes;
  P.Locality = Locality;
  return P;
}
} // namespace

TEST(CacheModel, ZeroAccessesZeroMisses) {
  Platform P = Platform::intelHaswellServer();
  CacheMisses M = estimateMisses(profile(0, 1e9, 0.5), P);
  EXPECT_DOUBLE_EQ(M.L1D, 0);
  EXPECT_DOUBLE_EQ(M.L2, 0);
  EXPECT_DOUBLE_EQ(M.L3, 0);
}

TEST(CacheModel, TinyWorkingSetHitsInL1) {
  Platform P = Platform::intelHaswellServer();
  // 4 KB per the whole machine: compulsory misses only.
  CacheMisses M = estimateMisses(profile(1e9, 4096, 0.5), P);
  EXPECT_LE(M.L1D, 4096 / 64.0 * 1.01);
}

TEST(CacheModel, MissesMonotoneDownTheHierarchy) {
  Platform P = Platform::intelHaswellServer();
  for (double Ws : {1e6, 1e8, 1e10, 1e11}) {
    CacheMisses M = estimateMisses(profile(1e10, Ws, 0.4), P);
    EXPECT_GE(M.L1D, M.L2) << Ws;
    EXPECT_GE(M.L2, M.L3) << Ws;
    EXPECT_GE(M.L3, 0.0) << Ws;
  }
}

TEST(CacheModel, MissesNeverExceedAccesses) {
  Platform P = Platform::intelSkylakeServer();
  CacheMisses M = estimateMisses(profile(1e7, 1e12, 0.0), P);
  EXPECT_LE(M.L1D, 1e7);
}

TEST(CacheModel, HigherLocalityFewerMisses) {
  Platform P = Platform::intelHaswellServer();
  CacheMisses Blocked = estimateMisses(profile(1e10, 1e10, 0.95), P);
  CacheMisses Random = estimateMisses(profile(1e10, 1e10, 0.05), P);
  EXPECT_LT(Blocked.L3, Random.L3);
  EXPECT_LT(Blocked.L1D, Random.L1D);
}

TEST(CacheModel, LargerWorkingSetMoreL3Misses) {
  Platform P = Platform::intelHaswellServer();
  CacheMisses Small = estimateMisses(profile(1e10, 1e7, 0.4), P);
  CacheMisses Large = estimateMisses(profile(1e10, 1e11, 0.4), P);
  EXPECT_LT(Small.L3, Large.L3);
}

TEST(CacheModel, WorkingSetInsideL3ProducesFewL3Misses) {
  Platform P = Platform::intelHaswellServer();
  // 16 MB fits the 60 MB aggregate L3: only compulsory traffic reaches
  // memory.
  CacheMisses M = estimateMisses(profile(1e10, 16e6, 0.3), P);
  EXPECT_LE(M.L3, 16e6 / 64.0 * 1.01);
}

TEST(CacheModel, StreamingFloorAtLeastCompulsory) {
  Platform P = Platform::intelHaswellServer();
  // Even with perfect locality, a 100 GB working set must stream through.
  CacheMisses M = estimateMisses(profile(2e9, 1e11, 1.0), P);
  EXPECT_GE(M.L1D, 1e11 / 64.0 * 0.99);
}

TEST(CacheModel, BiggerL2ReducesL2Misses) {
  // Skylake's 1 MB L2 vs Haswell's 256 KB, same totals otherwise.
  Platform H = Platform::intelHaswellServer();
  Platform S = H;
  S.L2KB = 1024;
  MemoryProfile Pr = profile(1e10, 2e9, 0.4);
  EXPECT_LE(estimateMisses(Pr, S).L2, estimateMisses(Pr, H).L2);
}
