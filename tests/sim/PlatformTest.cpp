//===- tests/sim/PlatformTest.cpp - Platform model tests -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/Platform.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace slope;
using namespace slope::sim;

TEST(Platform, HaswellMatchesPaperTable1) {
  Platform P = Platform::intelHaswellServer();
  EXPECT_EQ(P.Arch, Microarch::Haswell);
  EXPECT_EQ(P.ThreadsPerCore, 2u);
  EXPECT_EQ(P.CoresPerSocket, 12u);
  EXPECT_EQ(P.Sockets, 2u);
  EXPECT_EQ(P.NumaNodes, 2u);
  EXPECT_EQ(P.L1DKB, 32u);
  EXPECT_EQ(P.L2KB, 256u);
  EXPECT_EQ(P.L3KB, 30720u);
  EXPECT_EQ(P.MainMemoryGB, 64u);
  EXPECT_DOUBLE_EQ(P.TdpWatts, 240);
  EXPECT_DOUBLE_EQ(P.IdlePowerWatts, 58);
  EXPECT_EQ(P.totalCores(), 24u);
}

TEST(Platform, SkylakeMatchesPaperTable1) {
  Platform P = Platform::intelSkylakeServer();
  EXPECT_EQ(P.Arch, Microarch::Skylake);
  EXPECT_EQ(P.CoresPerSocket, 22u);
  EXPECT_EQ(P.Sockets, 1u);
  EXPECT_EQ(P.NumaNodes, 1u);
  EXPECT_EQ(P.L2KB, 1024u);
  EXPECT_EQ(P.L3KB, 30976u);
  EXPECT_EQ(P.MainMemoryGB, 96u);
  EXPECT_DOUBLE_EQ(P.TdpWatts, 140);
  EXPECT_DOUBLE_EQ(P.IdlePowerWatts, 32);
  EXPECT_EQ(P.totalCores(), 22u);
}

TEST(Platform, DerivedQuantities) {
  Platform P = Platform::intelHaswellServer();
  EXPECT_NEAR(P.peakGflops(), 24 * 2.3 * 16, 1e-9);
  EXPECT_DOUBLE_EQ(P.l1Bytes(), 32 * 1024.0);
  EXPECT_DOUBLE_EQ(P.l2Bytes(), 256 * 1024.0);
  EXPECT_DOUBLE_EQ(P.l3Bytes(), 30720 * 1024.0 * 2);
}

TEST(Platform, RegistryDispatchesOnMicroarch) {
  EXPECT_EQ(Platform::intelHaswellServer().buildRegistry().size(), 164u);
  EXPECT_EQ(Platform::intelSkylakeServer().buildRegistry().size(), 385u);
}

TEST(Platform, MicroarchNames) {
  EXPECT_STREQ(microarchName(Microarch::Haswell), "Haswell");
  EXPECT_STREQ(microarchName(Microarch::Skylake), "Skylake");
  EXPECT_STREQ(microarchName(Microarch::Zen2), "Zen2");
  EXPECT_STREQ(microarchName(Microarch::CortexA7), "Cortex-A7");
  EXPECT_STREQ(microarchName(Microarch::CortexA15), "Cortex-A15");
  EXPECT_STREQ(microarchName(Microarch::BigLittle), "big.LITTLE");
}

TEST(Platform, ZooRegistrySizes) {
  EXPECT_EQ(Platform::amdZen2Server().buildRegistry().size(), 96u);
  // The board registry is the A15 superset; the clusters get their own.
  EXPECT_EQ(Platform::armBigLittle().buildRegistry().size(), 62u);
}

TEST(Platform, Zen2HasNoFixedCounters) {
  Platform P = Platform::amdZen2Server();
  EXPECT_EQ(P.Arch, Microarch::Zen2);
  EXPECT_EQ(P.NumProgrammableCounters, 4u);
  EXPECT_EQ(P.NumFixedCounters, 0u);
  EXPECT_EQ(P.pmuSpec().NumProgrammable, 4u);
  EXPECT_EQ(P.pmuSpec().NumFixed, 0u);
  EXPECT_EQ(P.totalCores(), 32u);
  EXPECT_FALSE(P.isHeterogeneous());
  auto Ok = P.validate();
  EXPECT_TRUE(bool(Ok));
}

TEST(Platform, BigLittleClusters) {
  Platform P = Platform::armBigLittle();
  ASSERT_TRUE(P.isHeterogeneous());
  ASSERT_EQ(P.numClusters(), 2u);
  // The LITTLE (A7) cluster always comes first.
  EXPECT_EQ(P.Clusters[0].Name, "A7");
  EXPECT_EQ(P.Clusters[0].Arch, Microarch::CortexA7);
  EXPECT_EQ(P.Clusters[1].Name, "A15");
  EXPECT_EQ(P.Clusters[1].Arch, Microarch::CortexA15);
  // Distinct per-cluster shapes: frequency ranges and counter budgets.
  EXPECT_LT(P.Clusters[0].MaxFreqGHz, P.Clusters[1].MaxFreqGHz);
  EXPECT_EQ(P.Clusters[0].NumProgrammableCounters, 4u);
  EXPECT_EQ(P.Clusters[1].NumProgrammableCounters, 6u);
  // totalCores and peakGflops derive from the clusters.
  EXPECT_EQ(P.totalCores(), 8u);
  EXPECT_NEAR(P.peakGflops(), 4 * 1.4 * 2 + 4 * 2.0 * 4, 1e-9);
  EXPECT_TRUE(bool(P.validate()));
}

TEST(Platform, ClusterPlatformExtractsOneCluster) {
  Platform Board = Platform::armBigLittle();
  Platform Little = Board.clusterPlatform(0);
  EXPECT_EQ(Little.Arch, Microarch::CortexA7);
  EXPECT_EQ(Little.totalCores(), 4u);
  EXPECT_FALSE(Little.isHeterogeneous());
  EXPECT_DOUBLE_EQ(Little.TdpWatts, Board.Clusters[0].TdpWatts);
  EXPECT_EQ(Little.NumProgrammableCounters, 4u);
  EXPECT_EQ(Little.buildRegistry().size(), 44u);
  EXPECT_GT(Little.l3Bytes(), 0.0); // Cluster L2 serves as the LLC.
  Platform Big = Board.clusterPlatform(1);
  EXPECT_EQ(Big.Arch, Microarch::CortexA15);
  EXPECT_EQ(Big.buildRegistry().size(), 62u);
  EXPECT_TRUE(bool(Big.validate()));
  EXPECT_TRUE(bool(Little.validate()));
}

TEST(Platform, IntelPlatformsValidate) {
  EXPECT_TRUE(bool(Platform::intelHaswellServer().validate()));
  EXPECT_TRUE(bool(Platform::intelSkylakeServer().validate()));
}

TEST(PlatformValidate, RejectsZeroCores) {
  Platform P = Platform::intelHaswellServer();
  P.CoresPerSocket = 0;
  auto Ok = P.validate();
  ASSERT_FALSE(bool(Ok));
  EXPECT_NE(Ok.error().message().find("no cores"), std::string::npos);
}

TEST(PlatformValidate, RejectsZeroCounterBudget) {
  Platform P = Platform::intelSkylakeServer();
  P.NumProgrammableCounters = 0;
  auto Ok = P.validate();
  ASSERT_FALSE(bool(Ok));
  EXPECT_NE(Ok.error().message().find("counter budget"), std::string::npos);
}

TEST(PlatformValidate, RejectsEmptyCluster) {
  Platform P = Platform::armBigLittle();
  P.Clusters[1].Cores = 0;
  auto Ok = P.validate();
  ASSERT_FALSE(bool(Ok));
  EXPECT_NE(Ok.error().message().find("no cores"), std::string::npos);
}

TEST(PlatformValidate, RejectsClusterWithZeroCounters) {
  Platform P = Platform::armBigLittle();
  P.Clusters[0].NumProgrammableCounters = 0;
  auto Ok = P.validate();
  ASSERT_FALSE(bool(Ok));
  EXPECT_NE(Ok.error().message().find("counter budget"), std::string::npos);
}

TEST(PlatformValidate, RejectsEventSetForUnknownCluster) {
  Platform P = Platform::armBigLittle();
  P.ClusterEvents[0].Cluster = "M4"; // No such cluster on this board.
  auto Ok = P.validate();
  ASSERT_FALSE(bool(Ok));
  EXPECT_NE(Ok.error().message().find("unknown cluster"), std::string::npos);
}

TEST(PlatformValidate, RejectsEventSetWithUnknownEvent) {
  Platform P = Platform::armBigLittle();
  P.ClusterEvents[0].Events.push_back("NO_SUCH_EVENT");
  auto Ok = P.validate();
  ASSERT_FALSE(bool(Ok));
  EXPECT_NE(Ok.error().message().find("NO_SUCH_EVENT"), std::string::npos);
}

TEST(PlatformValidate, RejectsDuplicateClusterNames) {
  Platform P = Platform::armBigLittle();
  P.Clusters[1].Name = P.Clusters[0].Name;
  auto Ok = P.validate();
  ASSERT_FALSE(bool(Ok));
  EXPECT_NE(Ok.error().message().find("duplicate"), std::string::npos);
}

TEST(Platform, ClusterEventSetsNameRealCounters) {
  // The shipped big.LITTLE event sets must themselves validate (they
  // reference per-cluster registry events by name) and mirror the
  // published A7/A15 model counter lists: PMCCNTR on both, vector/FP
  // events only on the A15.
  Platform P = Platform::armBigLittle();
  ASSERT_EQ(P.ClusterEvents.size(), 2u);
  const ClusterEventSet &Little = P.ClusterEvents[0];
  const ClusterEventSet &Big = P.ClusterEvents[1];
  EXPECT_EQ(Little.Cluster, "A7");
  EXPECT_EQ(Big.Cluster, "A15");
  auto Has = [](const ClusterEventSet &Set, const char *Name) {
    return std::find(Set.Events.begin(), Set.Events.end(), Name) !=
           Set.Events.end();
  };
  EXPECT_TRUE(Has(Little, "PMCCNTR"));
  EXPECT_TRUE(Has(Big, "PMCCNTR"));
  EXPECT_FALSE(Has(Little, "VFP_SPEC"));
  EXPECT_TRUE(Has(Big, "VFP_SPEC"));
  EXPECT_LT(Little.Events.size(), Big.Events.size());
}
