//===- tests/sim/PlatformTest.cpp - Platform model tests -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/Platform.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::sim;

TEST(Platform, HaswellMatchesPaperTable1) {
  Platform P = Platform::intelHaswellServer();
  EXPECT_EQ(P.Arch, Microarch::Haswell);
  EXPECT_EQ(P.ThreadsPerCore, 2u);
  EXPECT_EQ(P.CoresPerSocket, 12u);
  EXPECT_EQ(P.Sockets, 2u);
  EXPECT_EQ(P.NumaNodes, 2u);
  EXPECT_EQ(P.L1DKB, 32u);
  EXPECT_EQ(P.L2KB, 256u);
  EXPECT_EQ(P.L3KB, 30720u);
  EXPECT_EQ(P.MainMemoryGB, 64u);
  EXPECT_DOUBLE_EQ(P.TdpWatts, 240);
  EXPECT_DOUBLE_EQ(P.IdlePowerWatts, 58);
  EXPECT_EQ(P.totalCores(), 24u);
}

TEST(Platform, SkylakeMatchesPaperTable1) {
  Platform P = Platform::intelSkylakeServer();
  EXPECT_EQ(P.Arch, Microarch::Skylake);
  EXPECT_EQ(P.CoresPerSocket, 22u);
  EXPECT_EQ(P.Sockets, 1u);
  EXPECT_EQ(P.NumaNodes, 1u);
  EXPECT_EQ(P.L2KB, 1024u);
  EXPECT_EQ(P.L3KB, 30976u);
  EXPECT_EQ(P.MainMemoryGB, 96u);
  EXPECT_DOUBLE_EQ(P.TdpWatts, 140);
  EXPECT_DOUBLE_EQ(P.IdlePowerWatts, 32);
  EXPECT_EQ(P.totalCores(), 22u);
}

TEST(Platform, DerivedQuantities) {
  Platform P = Platform::intelHaswellServer();
  EXPECT_NEAR(P.peakGflops(), 24 * 2.3 * 16, 1e-9);
  EXPECT_DOUBLE_EQ(P.l1Bytes(), 32 * 1024.0);
  EXPECT_DOUBLE_EQ(P.l2Bytes(), 256 * 1024.0);
  EXPECT_DOUBLE_EQ(P.l3Bytes(), 30720 * 1024.0 * 2);
}

TEST(Platform, RegistryDispatchesOnMicroarch) {
  EXPECT_EQ(Platform::intelHaswellServer().buildRegistry().size(), 164u);
  EXPECT_EQ(Platform::intelSkylakeServer().buildRegistry().size(), 385u);
}

TEST(Platform, MicroarchNames) {
  EXPECT_STREQ(microarchName(Microarch::Haswell), "Haswell");
  EXPECT_STREQ(microarchName(Microarch::Skylake), "Skylake");
}
