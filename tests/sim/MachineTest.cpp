//===- tests/sim/MachineTest.cpp - Machine execution/synthesis tests ------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include "pmc/PlatformEvents.h"
#include "stats/Descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::pmc;
using namespace slope::sim;

namespace {
Application dgemm(uint64_t N = 8192) {
  return Application(KernelKind::MklDgemm, N);
}
} // namespace

TEST(Machine, RunProducesPositiveTimeAndEnergy) {
  Machine M(Platform::intelHaswellServer(), 1);
  Execution E = M.run(dgemm());
  EXPECT_GT(E.totalTimeSec(), 0.0);
  EXPECT_GT(E.TrueDynamicEnergyJ, 0.0);
  EXPECT_EQ(E.Phases.size(), 1u);
}

TEST(Machine, RepeatedRunsVarySlightly) {
  Machine M(Platform::intelHaswellServer(), 2);
  Execution A = M.run(dgemm());
  Execution B = M.run(dgemm());
  EXPECT_NE(A.RunSeed, B.RunSeed);
  EXPECT_NE(A.TrueDynamicEnergyJ, B.TrueDynamicEnergyJ);
  // ... but only slightly (work jitter + energy noise ~ few percent).
  EXPECT_NEAR(A.TrueDynamicEnergyJ / B.TrueDynamicEnergyJ, 1.0, 0.25);
}

TEST(Machine, SameSeedSameHistory) {
  Machine A(Platform::intelHaswellServer(), 7);
  Machine B(Platform::intelHaswellServer(), 7);
  Execution Ea = A.run(dgemm());
  Execution Eb = B.run(dgemm());
  EXPECT_EQ(Ea.RunSeed, Eb.RunSeed);
  EXPECT_DOUBLE_EQ(Ea.TrueDynamicEnergyJ, Eb.TrueDynamicEnergyJ);
}

TEST(Machine, CompoundRunsBothPhases) {
  Machine M(Platform::intelHaswellServer(), 3);
  CompoundApplication App(dgemm(6000),
                          Application(KernelKind::Stream, 5e8));
  Execution E = M.run(App);
  ASSERT_EQ(E.Phases.size(), 2u);
  EXPECT_GT(E.Phases[0].TimeSec, 0);
  EXPECT_GT(E.Phases[1].TimeSec, 0);
  EXPECT_NEAR(E.totalTimeSec(),
              E.Phases[0].TimeSec + E.Phases[1].TimeSec, 1e-12);
}

TEST(Machine, CompoundEnergyIsNearlySumOfBases) {
  // The paper's physical premise, which the additivity criterion rests
  // on: dynamic energy of A;B equals E(A) + E(B) within tolerance.
  Machine M(Platform::intelHaswellServer(), 4);
  Application A = dgemm(7000);
  Application B(KernelKind::Stencil2D, 4000);
  double SumOfBases = 0;
  const int Reps = 5;
  for (int I = 0; I < Reps; ++I)
    SumOfBases += M.run(A).TrueDynamicEnergyJ +
                  M.run(B).TrueDynamicEnergyJ;
  SumOfBases /= Reps;
  double Compound = 0;
  for (int I = 0; I < Reps; ++I)
    Compound += M.run(CompoundApplication(A, B)).TrueDynamicEnergyJ;
  Compound /= Reps;
  EXPECT_NEAR(Compound / SumOfBases, 1.0, 0.05);
}

TEST(Machine, TotalActivitiesSumPhases) {
  Machine M(Platform::intelHaswellServer(), 5);
  CompoundApplication App(dgemm(5000), dgemm(6000));
  Execution E = M.run(App);
  ActivityVector Total = E.totalActivities();
  EXPECT_DOUBLE_EQ(Total[ActivityKind::FpVectorDouble],
                   E.Phases[0].Activities[ActivityKind::FpVectorDouble] +
                       E.Phases[1].Activities[ActivityKind::FpVectorDouble]);
}

TEST(Machine, CounterReadingIsDeterministicPerRun) {
  Machine M(Platform::intelHaswellServer(), 6);
  Execution E = M.run(dgemm());
  EventId Id = *M.registry().lookup("L2_RQSTS_MISS");
  EXPECT_DOUBLE_EQ(M.readCounter(Id, E), M.readCounter(Id, E));
}

TEST(Machine, DifferentEventsGetIndependentNoise) {
  Machine M(Platform::intelHaswellServer(), 7);
  Execution E = M.run(dgemm());
  EventId A = *M.registry().lookup("UOPS_ISSUED_ANY");
  EventId B = *M.registry().lookup("UOPS_EXECUTED_CORE");
  // Both map uop activities, but the per-event noise must differ.
  double Ra = M.readCounter(A, E) / E.totalActivities()[ActivityKind::UopsIssued];
  double Rb = M.readCounter(B, E) / E.totalActivities()[ActivityKind::UopsExecuted];
  EXPECT_NE(Ra, Rb);
}

TEST(Machine, AdditiveEventComposesOverCompounds) {
  Machine M(Platform::intelHaswellServer(), 8);
  // UOPS_EXECUTED_CORE has tiny context coupling: compound reading stays
  // within a few percent of the sum of base readings.
  EventId Id = *M.registry().lookup("UOPS_EXECUTED_CORE");
  Application A = dgemm(6000), B = dgemm(9000);
  double Sum = 0, Compound = 0;
  const int Reps = 5;
  for (int I = 0; I < Reps; ++I) {
    Sum += M.readCounter(Id, M.run(A)) + M.readCounter(Id, M.run(B));
    Compound += M.readCounter(Id, M.run(CompoundApplication(A, B)));
  }
  EXPECT_NEAR(Compound / Sum, 1.0, 0.05);
}

TEST(Machine, DividerEventInflatesOnCompounds) {
  // ARITH_DIVIDER_COUNT is strongly context-dominated (Table 2: 80%
  // error): its compound reading must exceed the sum of base readings by
  // far more than the 5% tolerance for a high-intensity kernel.
  Machine M(Platform::intelHaswellServer(), 9);
  EventId Id = *M.registry().lookup("ARITH_DIVIDER_COUNT");
  Application A(KernelKind::QuickSort, 1u << 26);
  Application B(KernelKind::MonteCarlo, 1u << 24);
  double Sum = 0, Compound = 0;
  const int Reps = 6;
  for (int I = 0; I < Reps; ++I) {
    Sum += M.readCounter(Id, M.run(A)) + M.readCounter(Id, M.run(B));
    Compound += M.readCounter(Id, M.run(CompoundApplication(A, B)));
  }
  EXPECT_GT(std::fabs(Compound - Sum) / Sum, 0.10);
}

TEST(Machine, InsignificantEventReportsTinyCounts) {
  Machine M(Platform::intelHaswellServer(), 10);
  EventId Id = *M.registry().lookup("RTM_RETIRED_ABORTED");
  Execution E = M.run(dgemm());
  EXPECT_LE(M.readCounter(Id, E), 50.0);
}

TEST(Machine, ReadCountersMatchesIndividualReads) {
  Machine M(Platform::intelHaswellServer(), 11);
  Execution E = M.run(dgemm());
  std::vector<EventId> Ids;
  for (const std::string &Name : haswellClassAPmcNames())
    Ids.push_back(*M.registry().lookup(Name));
  std::vector<double> Batch = M.readCounters(Ids, E);
  for (size_t I = 0; I < Ids.size(); ++I)
    EXPECT_DOUBLE_EQ(Batch[I], M.readCounter(Ids[I], E));
}

TEST(Machine, CountersAreNeverNegative) {
  Machine M(Platform::intelSkylakeServer(), 12);
  Execution E = M.run(Application(KernelKind::MklFft, 24000));
  for (EventId Id : M.registry().allEvents())
    EXPECT_GE(M.readCounter(Id, E), 0.0);
}
