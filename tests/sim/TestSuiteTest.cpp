//===- tests/sim/TestSuiteTest.cpp - Suite generator tests ----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/TestSuite.h"

#include <gtest/gtest.h>

#include <set>

using namespace slope;
using namespace slope::sim;

TEST(DiverseSuite, ProducesRequestedCount) {
  Platform P = Platform::intelHaswellServer();
  EXPECT_EQ(diverseBaseSuite(P, 277, Rng(1)).size(), 277u);
  EXPECT_EQ(diverseBaseSuite(P, 5, Rng(1)).size(), 5u);
}

TEST(DiverseSuite, CoversAllKernels) {
  Platform P = Platform::intelHaswellServer();
  std::vector<Application> Suite = diverseBaseSuite(P, 64, Rng(2));
  std::set<KernelKind> Kinds;
  for (const Application &App : Suite)
    Kinds.insert(App.Kind);
  EXPECT_EQ(Kinds.size(), NumKernelKinds);
}

TEST(DiverseSuite, AllApplicationsValid) {
  Platform P = Platform::intelSkylakeServer();
  for (const Application &App : diverseBaseSuite(P, 100, Rng(3)))
    EXPECT_TRUE(App.isValid()) << App.str();
}

TEST(DiverseSuite, RuntimesRespectTheWindow) {
  // The paper picks problem sizes with "reasonable execution time
  // (>3 s)"; allow slack where a kernel's range cannot reach the window.
  Platform P = Platform::intelHaswellServer();
  size_t InWindow = 0;
  std::vector<Application> Suite = diverseBaseSuite(P, 96, Rng(4), 3, 120);
  for (const Application &App : Suite) {
    double T = kernelTimeSeconds(App.Kind, static_cast<double>(App.Size), P);
    if (T >= 2.5 && T <= 150)
      ++InWindow;
  }
  EXPECT_GE(InWindow, Suite.size() * 9 / 10);
}

TEST(DiverseSuite, DeterministicPerSeed) {
  Platform P = Platform::intelHaswellServer();
  std::vector<Application> A = diverseBaseSuite(P, 30, Rng(5));
  std::vector<Application> B = diverseBaseSuite(P, 30, Rng(5));
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_TRUE(A[I] == B[I]);
}

TEST(CompoundSuite, PairsAreTwoPhase) {
  Platform P = Platform::intelHaswellServer();
  std::vector<Application> Bases = diverseBaseSuite(P, 20, Rng(6));
  std::vector<CompoundApplication> Compounds =
      makeCompoundSuite(Bases, 50, Rng(7));
  EXPECT_EQ(Compounds.size(), 50u);
  for (const CompoundApplication &App : Compounds) {
    EXPECT_EQ(App.numPhases(), 2u);
    EXPECT_FALSE(App.Phases[0] == App.Phases[1]);
  }
}

TEST(AdditivityBases, SplitsBetweenDgemmAndFft) {
  std::vector<Application> Bases = dgemmFftAdditivityBases(50);
  EXPECT_EQ(Bases.size(), 50u);
  size_t NumDgemm = 0, NumFft = 0;
  for (const Application &App : Bases) {
    if (App.Kind == KernelKind::MklDgemm) {
      ++NumDgemm;
      EXPECT_GE(App.Size, 6500u);
      EXPECT_LE(App.Size, 20000u);
    } else {
      ASSERT_EQ(App.Kind, KernelKind::MklFft);
      ++NumFft;
      EXPECT_GE(App.Size, 22400u);
      EXPECT_LE(App.Size, 29000u);
    }
  }
  EXPECT_EQ(NumDgemm, 25u);
  EXPECT_EQ(NumFft, 25u);
}

TEST(ModelDataset, Has801PointsWithPaperRangesAndStride) {
  std::vector<Application> Points = dgemmFftModelDataset();
  ASSERT_EQ(Points.size(), 801u);
  size_t NumDgemm = 0;
  for (const Application &App : Points) {
    EXPECT_EQ(App.Size % 64, 0u);
    if (App.Kind == KernelKind::MklDgemm) {
      ++NumDgemm;
      EXPECT_GE(App.Size, 6400u);
      EXPECT_LE(App.Size, 38400u);
    } else {
      EXPECT_GE(App.Size, 22400u);
      EXPECT_LE(App.Size, 41536u);
    }
  }
  EXPECT_EQ(NumDgemm, 501u);
}
