//===- tests/ml/KnnRegressorTest.cpp - k-NN baseline tests ----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/KnnRegressor.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::ml;

namespace {
Dataset makeGrid() {
  Dataset D({"x"});
  for (int I = 0; I <= 10; ++I)
    D.addRow({static_cast<double>(I)}, 10.0 * I);
  return D;
}
} // namespace

TEST(KnnRegressor, ExactHitReturnsTarget) {
  KnnRegressor M;
  ASSERT_TRUE(bool(M.fit(makeGrid())));
  EXPECT_DOUBLE_EQ(M.predict({4}), 40.0);
}

TEST(KnnRegressor, InterpolatesBetweenNeighbours) {
  KnnOptions Options;
  Options.K = 2;
  KnnRegressor M(Options);
  ASSERT_TRUE(bool(M.fit(makeGrid())));
  double P = M.predict({4.5});
  EXPECT_GT(P, 40.0);
  EXPECT_LT(P, 50.0);
}

TEST(KnnRegressor, UniformWeightsAverageNeighbours) {
  KnnOptions Options;
  Options.K = 2;
  Options.DistanceWeighted = false;
  KnnRegressor M(Options);
  ASSERT_TRUE(bool(M.fit(makeGrid())));
  EXPECT_DOUBLE_EQ(M.predict({4.4}), 45.0); // Neighbours 4 and 5.
}

TEST(KnnRegressor, KOneIsNearestNeighbour) {
  KnnOptions Options;
  Options.K = 1;
  KnnRegressor M(Options);
  ASSERT_TRUE(bool(M.fit(makeGrid())));
  EXPECT_DOUBLE_EQ(M.predict({6.4}), 60.0);
  EXPECT_DOUBLE_EQ(M.predict({6.6}), 70.0);
}

TEST(KnnRegressor, KLargerThanDatasetClamps) {
  KnnOptions Options;
  Options.K = 100;
  KnnRegressor M(Options);
  ASSERT_TRUE(bool(M.fit(makeGrid())));
  EXPECT_EQ(M.effectiveK(), 11u);
  // Off-grid query: weighted mean over the whole (clamped) set.
  EXPECT_GT(M.predict({0.3}), 0.0);
  // Exact training hit still short-circuits to the stored target.
  EXPECT_DOUBLE_EQ(M.predict({0}), 0.0);
}

TEST(KnnRegressor, CannotExtrapolateBeyondTargets) {
  // Like the forest, k-NN saturates outside the training hull — the
  // Manila-style baseline shares RF's compound-app weakness.
  KnnRegressor M;
  ASSERT_TRUE(bool(M.fit(makeGrid())));
  EXPECT_LE(M.predict({1000}), 100.0 + 1e-9);
}

TEST(KnnRegressor, StandardizationBalancesScales) {
  // Feature 1 is the informative one but has a tiny scale; without
  // standardization feature 0 (pure noise at large scale) would
  // dominate distances.
  Rng R(1);
  Dataset D({"noise", "signal"});
  for (int I = 0; I < 200; ++I) {
    double Signal = R.uniform(0, 1);
    D.addRow({R.uniform(0, 1e6), Signal}, 100 * Signal);
  }
  KnnRegressor M;
  ASSERT_TRUE(bool(M.fit(D)));
  double Err = 0;
  for (double S = 0.1; S < 1.0; S += 0.2)
    Err += std::fabs(M.predict({5e5, S}) - 100 * S);
  EXPECT_LT(Err / 5, 25.0);
}

TEST(KnnRegressor, RejectsEmptyDataset) {
  KnnRegressor M;
  Dataset D({"x"});
  EXPECT_FALSE(bool(M.fit(D)));
}

TEST(KnnRegressor, NameIsKnn) {
  EXPECT_EQ(KnnRegressor().name(), "kNN");
}

TEST(KnnRegressorDeath, PredictBeforeFitAsserts) {
  KnnRegressor M;
  EXPECT_DEATH((void)M.predict({1.0}), "unfitted");
}
