//===- tests/ml/NeuralNetworkTest.cpp - MLP tests ------------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/NeuralNetwork.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::ml;

namespace {
Dataset makeLinearData(size_t N, uint64_t Seed) {
  Rng R(Seed);
  Dataset D({"a", "b"});
  for (size_t I = 0; I < N; ++I) {
    double A = R.uniform(-5, 5), B = R.uniform(-5, 5);
    D.addRow({A, B}, 4 * A - 3 * B + 10);
  }
  return D;
}
} // namespace

TEST(NeuralNetwork, LinearTransferLearnsLinearMap) {
  NeuralNetworkOptions Options;
  Options.Epochs = 200;
  NeuralNetwork M(Options);
  Dataset D = makeLinearData(200, 1);
  ASSERT_TRUE(bool(M.fit(D)));
  EXPECT_NEAR(M.predict({1, 1}), 11.0, 0.3);
  EXPECT_NEAR(M.predict({0, 0}), 10.0, 0.3);
  EXPECT_NEAR(M.predict({-2, 3}), -7.0, 0.5);
}

TEST(NeuralNetwork, TrainingLossDecreasesWithEpochs) {
  Dataset D = makeLinearData(150, 2);
  NeuralNetworkOptions Short, Long;
  Short.Epochs = 3;
  Long.Epochs = 120;
  NeuralNetwork A(Short), B(Long);
  ASSERT_TRUE(bool(A.fit(D)));
  ASSERT_TRUE(bool(B.fit(D)));
  EXPECT_LT(B.finalTrainingLoss(), A.finalTrainingLoss());
}

TEST(NeuralNetwork, DeterministicPerSeed) {
  Dataset D = makeLinearData(80, 3);
  NeuralNetworkOptions Options;
  Options.Epochs = 30;
  Options.Seed = 17;
  NeuralNetwork A(Options), B(Options);
  ASSERT_TRUE(bool(A.fit(D)));
  ASSERT_TRUE(bool(B.fit(D)));
  EXPECT_DOUBLE_EQ(A.predict({1, 2}), B.predict({1, 2}));
}

TEST(NeuralNetwork, ReluLearnsNonlinearity) {
  // y = |x| is not linear; a ReLU net must beat any linear fit.
  Rng R(4);
  Dataset D({"x"});
  for (int I = 0; I < 400; ++I) {
    double X = R.uniform(-4, 4);
    D.addRow({X}, std::fabs(X));
  }
  NeuralNetworkOptions Options;
  Options.Transfer = Activation::ReLU;
  Options.HiddenLayers = {16};
  Options.Epochs = 400;
  NeuralNetwork M(Options);
  ASSERT_TRUE(bool(M.fit(D)));
  EXPECT_NEAR(M.predict({3}), 3.0, 0.4);
  EXPECT_NEAR(M.predict({-3}), 3.0, 0.4);
  EXPECT_LT(M.predict({0}), 0.8); // Any linear fit would predict ~2.
}

TEST(NeuralNetwork, LinearTransferExtrapolates) {
  // Unlike the forest, an identity-transfer network extrapolates
  // linearly — the paper's Class A NN models degrade more gracefully on
  // compound apps than RF.
  Rng R(5);
  Dataset D({"x"});
  for (int I = 0; I < 200; ++I) {
    double X = R.uniform(0, 10);
    D.addRow({X}, 5 * X);
  }
  NeuralNetworkOptions Options;
  Options.Epochs = 250;
  NeuralNetwork M(Options);
  ASSERT_TRUE(bool(M.fit(D)));
  EXPECT_NEAR(M.predict({20}), 100.0, 6.0); // 2x beyond training range.
}

TEST(NeuralNetwork, MultipleHiddenLayers) {
  NeuralNetworkOptions Options;
  Options.HiddenLayers = {8, 8};
  Options.Epochs = 150;
  NeuralNetwork M(Options);
  ASSERT_TRUE(bool(M.fit(makeLinearData(150, 6))));
  EXPECT_NEAR(M.predict({1, 0}), 14.0, 1.0);
}

TEST(NeuralNetwork, ConstantFeatureColumnIsHarmless) {
  Rng R(7);
  Dataset D({"x", "const"});
  for (int I = 0; I < 100; ++I) {
    double X = R.uniform(0, 5);
    D.addRow({X, 3.0}, 2 * X);
  }
  NeuralNetworkOptions Options;
  Options.Epochs = 150;
  NeuralNetwork M(Options);
  ASSERT_TRUE(bool(M.fit(D)));
  EXPECT_NEAR(M.predict({2, 3.0}), 4.0, 0.4);
}

TEST(NeuralNetwork, RejectsEmptyDataset) {
  NeuralNetwork M;
  Dataset D({"x"});
  EXPECT_FALSE(bool(M.fit(D)));
}

TEST(NeuralNetwork, NameIsNN) {
  EXPECT_EQ(NeuralNetwork().name(), "NN");
}

TEST(NeuralNetwork, ActivationNames) {
  EXPECT_STREQ(activationName(Activation::Identity), "identity");
  EXPECT_STREQ(activationName(Activation::ReLU), "relu");
  EXPECT_STREQ(activationName(Activation::Tanh), "tanh");
}

TEST(NeuralNetworkDeath, PredictBeforeFitAsserts) {
  NeuralNetwork M;
  EXPECT_DEATH((void)M.predict({1.0}), "unfitted");
}
