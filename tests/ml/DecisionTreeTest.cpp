//===- tests/ml/DecisionTreeTest.cpp - Regression tree tests -------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/DecisionTree.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::ml;

namespace {
Dataset makeStepData() {
  // y = 0 for x < 5, y = 10 for x >= 5: one split suffices.
  Dataset D({"x"});
  for (int I = 0; I < 10; ++I)
    D.addRow({static_cast<double>(I)}, I < 5 ? 0.0 : 10.0);
  return D;
}
} // namespace

TEST(DecisionTree, LearnsStepFunction) {
  DecisionTree T;
  ASSERT_TRUE(bool(T.fit(makeStepData())));
  EXPECT_DOUBLE_EQ(T.predict({2}), 0.0);
  EXPECT_DOUBLE_EQ(T.predict({7}), 10.0);
}

TEST(DecisionTree, SingleRowIsLeaf) {
  Dataset D({"x"});
  D.addRow({1}, 42);
  DecisionTree T;
  ASSERT_TRUE(bool(T.fit(D)));
  EXPECT_EQ(T.numNodes(), 1u);
  EXPECT_DOUBLE_EQ(T.predict({99}), 42);
}

TEST(DecisionTree, ConstantTargetsStayOneLeaf) {
  Dataset D({"x"});
  for (int I = 0; I < 20; ++I)
    D.addRow({static_cast<double>(I)}, 5.0);
  DecisionTree T;
  ASSERT_TRUE(bool(T.fit(D)));
  // No variance to reduce: splitting gains nothing, but implementations
  // may still split on ties; prediction must remain exact either way.
  EXPECT_DOUBLE_EQ(T.predict({3}), 5.0);
  EXPECT_DOUBLE_EQ(T.predict({-100}), 5.0);
}

TEST(DecisionTree, RespectsMaxDepth) {
  DecisionTreeOptions Options;
  Options.MaxDepth = 2;
  Options.MinSamplesLeaf = 1;
  Options.MinSamplesSplit = 2;
  Dataset D({"x"});
  for (int I = 0; I < 64; ++I)
    D.addRow({static_cast<double>(I)}, static_cast<double>(I));
  DecisionTree T(Options);
  ASSERT_TRUE(bool(T.fit(D)));
  EXPECT_LE(T.fittedDepth(), 2u);
}

TEST(DecisionTree, DeepTreeInterpolatesTraining) {
  DecisionTreeOptions Options;
  Options.MaxDepth = 30;
  Options.MinSamplesLeaf = 1;
  Options.MinSamplesSplit = 2;
  Dataset D({"x"});
  for (int I = 0; I < 32; ++I)
    D.addRow({static_cast<double>(I)}, static_cast<double>(I * I % 7));
  DecisionTree T(Options);
  ASSERT_TRUE(bool(T.fit(D)));
  for (int I = 0; I < 32; ++I)
    EXPECT_DOUBLE_EQ(T.predict({static_cast<double>(I)}),
                     static_cast<double>(I * I % 7));
}

TEST(DecisionTree, CannotExtrapolateBeyondTrainingRange) {
  // The key property behind the paper's RF max-error blow-ups: a tree
  // predicts within [min(y), max(y)] of its training targets.
  Dataset D({"x"});
  for (int I = 0; I < 50; ++I)
    D.addRow({static_cast<double>(I)}, 2.0 * I);
  DecisionTree T;
  ASSERT_TRUE(bool(T.fit(D)));
  double FarOut = T.predict({1000.0});
  EXPECT_LE(FarOut, 98.0 + 1e-12);
  EXPECT_GE(FarOut, 0.0);
}

TEST(DecisionTree, MultiFeatureSplitsOnInformativeFeature) {
  // Feature 0 is noise, feature 1 carries the signal.
  Dataset D({"noise", "signal"});
  for (int I = 0; I < 40; ++I)
    D.addRow({static_cast<double>(I % 3), static_cast<double>(I)},
             I < 20 ? 1.0 : 9.0);
  DecisionTree T;
  ASSERT_TRUE(bool(T.fit(D)));
  EXPECT_DOUBLE_EQ(T.predict({0, 5}), 1.0);
  EXPECT_DOUBLE_EQ(T.predict({0, 35}), 9.0);
}

TEST(DecisionTree, FitRowsUsesOnlySelectedRows) {
  Dataset D({"x"});
  for (int I = 0; I < 10; ++I)
    D.addRow({static_cast<double>(I)}, I < 5 ? 0.0 : 100.0);
  DecisionTree T;
  // Train only on the low-target half.
  ASSERT_TRUE(bool(T.fitRows(D, {0, 1, 2, 3, 4})));
  EXPECT_DOUBLE_EQ(T.predict({9}), 0.0);
}

TEST(DecisionTree, RejectsEmptyIndexSet) {
  Dataset D({"x"});
  D.addRow({1}, 1);
  DecisionTree T;
  EXPECT_FALSE(bool(T.fitRows(D, {})));
}

TEST(DecisionTree, MinSamplesLeafPreventsTinyLeaves) {
  DecisionTreeOptions Options;
  Options.MinSamplesLeaf = 5;
  Options.MinSamplesSplit = 10;
  Dataset D({"x"});
  for (int I = 0; I < 9; ++I)
    D.addRow({static_cast<double>(I)}, static_cast<double>(I));
  DecisionTree T(Options);
  ASSERT_TRUE(bool(T.fit(D)));
  // 9 rows < MinSamplesSplit: the tree must be a single leaf at mean 4.
  EXPECT_EQ(T.numNodes(), 1u);
  EXPECT_DOUBLE_EQ(T.predict({0}), 4.0);
}
