//===- tests/ml/ModelIoTest.cpp - Model persistence tests -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/ModelIo.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace slope;
using namespace slope::ml;

namespace {
SavedLinearModel makeSaved() {
  SavedLinearModel Model;
  Model.PmcNames = {"IDQ_MITE_UOPS", "UOPS_EXECUTED_PORT_PORT_6"};
  Model.Coefficients = {3.83e-9, 1.46e-9};
  Model.Intercept = 0.0;
  return Model;
}
} // namespace

TEST(ModelIo, TextRoundTripIsExact) {
  SavedLinearModel Original = makeSaved();
  auto Parsed = linearModelFromText(linearModelToText(Original));
  ASSERT_TRUE(bool(Parsed));
  EXPECT_EQ(Parsed->PmcNames, Original.PmcNames);
  ASSERT_EQ(Parsed->Coefficients.size(), 2u);
  EXPECT_DOUBLE_EQ(Parsed->Coefficients[0], 3.83e-9);
  EXPECT_DOUBLE_EQ(Parsed->Intercept, 0.0);
}

TEST(ModelIo, PredictMatchesLinearForm) {
  SavedLinearModel Model = makeSaved();
  EXPECT_DOUBLE_EQ(Model.predict({1e9, 2e9}),
                   3.83e-9 * 1e9 + 1.46e-9 * 2e9);
}

TEST(ModelIo, SnapshotCapturesAFittedModel) {
  Rng R(1);
  Dataset D({"a", "b"});
  for (int I = 0; I < 50; ++I) {
    double A = R.uniform(0, 10), B = R.uniform(0, 10);
    D.addRow({A, B}, 4 * A + 9 * B);
  }
  LinearRegression M;
  ASSERT_TRUE(bool(M.fit(D)));
  SavedLinearModel Saved = snapshotLinearModel(M, {"a", "b"});
  // The snapshot predicts identically to the live model.
  for (double X = 0; X < 10; X += 2.5)
    EXPECT_NEAR(Saved.predict({X, 10 - X}), M.predict({X, 10 - X}), 1e-9);
}

TEST(ModelIo, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "slope_model_io.txt";
  ASSERT_TRUE(bool(writeLinearModel(makeSaved(), Path)));
  auto Parsed = readLinearModel(Path);
  std::remove(Path.c_str());
  ASSERT_TRUE(bool(Parsed));
  EXPECT_EQ(Parsed->PmcNames[1], "UOPS_EXECUTED_PORT_PORT_6");
}

TEST(ModelIo, RejectsBadHeader) {
  auto Parsed = linearModelFromText("not-a-model\nintercept 0\ncoef a 1\n");
  ASSERT_FALSE(bool(Parsed));
  EXPECT_NE(Parsed.error().message().find("header"), std::string::npos);
}

TEST(ModelIo, RejectsUnknownKeyword) {
  auto Parsed = linearModelFromText(
      "slope-lr-model v1\nintercept 0\nbogus x 1\n");
  ASSERT_FALSE(bool(Parsed));
  EXPECT_NE(Parsed.error().message().find("bogus"), std::string::npos);
}

TEST(ModelIo, RejectsMissingIntercept) {
  auto Parsed = linearModelFromText("slope-lr-model v1\ncoef a 1\n");
  ASSERT_FALSE(bool(Parsed));
}

TEST(ModelIo, RejectsEmptyCoefficients) {
  auto Parsed = linearModelFromText("slope-lr-model v1\nintercept 0\n");
  ASSERT_FALSE(bool(Parsed));
}

TEST(ModelIo, ToleratesBlankLines) {
  auto Parsed = linearModelFromText(
      "slope-lr-model v1\n\nintercept 2.5\n\ncoef x 1e-9\n\n");
  ASSERT_TRUE(bool(Parsed));
  EXPECT_DOUBLE_EQ(Parsed->Intercept, 2.5);
}
