//===- tests/ml/TreeAlgorithmTest.cpp - Presorted vs naive growth --------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Property tests that the presorted growth algorithm reproduces the naive
// seed algorithm's trees bit for bit, and that its growth loop performs
// zero heap allocations after the per-tree scratch setup.
//
//===----------------------------------------------------------------------===//

#include "AllocCounting.h"

#include "ml/DecisionTree.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

using namespace slope;
using namespace slope::ml;

namespace {

Dataset randomDataset(uint64_t Seed, size_t Rows, size_t Cols,
                      bool Quantize) {
  Rng R(Seed);
  std::vector<std::string> Names;
  for (size_t J = 0; J < Cols; ++J)
    Names.push_back("f" + std::to_string(J));
  Dataset D(Names);
  for (size_t I = 0; I < Rows; ++I) {
    std::vector<double> X(Cols);
    double Y = 0;
    for (size_t J = 0; J < Cols; ++J) {
      double V = R.uniform(0, 10);
      // Quantizing forces duplicate feature values, exercising the
      // can't-split-between-equal-values paths and sort tie-breaking.
      X[J] = Quantize ? std::floor(V) : V;
      Y += static_cast<double>(J + 1) * X[J];
    }
    D.addRow(X, Y + R.gaussian(0, 1));
  }
  return D;
}

/// Requires bit-for-bit identical fitted trees (structure, thresholds,
/// leaf means, depths).
void expectIdenticalTrees(const DecisionTree &A, const DecisionTree &B) {
  ASSERT_EQ(A.numNodes(), B.numNodes());
  EXPECT_EQ(A.fittedDepth(), B.fittedDepth());
  for (size_t I = 0; I < A.numNodes(); ++I) {
    DecisionTree::NodeView NA = A.node(I), NB = B.node(I);
    EXPECT_EQ(NA.Feature, NB.Feature) << "node " << I;
    EXPECT_EQ(NA.Left, NB.Left) << "node " << I;
    EXPECT_EQ(NA.Right, NB.Right) << "node " << I;
    EXPECT_EQ(NA.Depth, NB.Depth) << "node " << I;
    EXPECT_EQ(std::memcmp(&NA.Threshold, &NB.Threshold, sizeof(double)), 0)
        << "node " << I << " threshold " << NA.Threshold << " vs "
        << NB.Threshold;
    EXPECT_EQ(std::memcmp(&NA.LeafValue, &NB.LeafValue, sizeof(double)), 0)
        << "node " << I << " leaf value " << NA.LeafValue << " vs "
        << NB.LeafValue;
  }
}

TEST(TreeAlgorithm, PresortedMatchesNaiveOnRandomDatasets) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Dataset D = randomDataset(Seed, 60, 4, /*Quantize=*/Seed % 2 == 0);
    DecisionTreeOptions Options;
    Options.Algorithm = TreeAlgorithm::Presorted;
    DecisionTree Fast(Options);
    ASSERT_TRUE(bool(Fast.fit(D)));
    Options.Algorithm = TreeAlgorithm::Naive;
    DecisionTree Reference(Options);
    ASSERT_TRUE(bool(Reference.fit(D)));
    expectIdenticalTrees(Fast, Reference);
  }
}

TEST(TreeAlgorithm, PresortedMatchesNaiveWithMtryAndBootstrap) {
  for (uint64_t Seed = 11; Seed <= 16; ++Seed) {
    Dataset D = randomDataset(Seed, 80, 6, /*Quantize=*/true);
    // Bootstrap sample with duplicates, as RandomForest draws it.
    Rng BootRng(Seed ^ 0xB007);
    std::vector<size_t> Rows(D.numRows());
    for (size_t &R : Rows)
      R = BootRng.below(D.numRows());

    DecisionTreeOptions Options;
    Options.MaxFeatures = 2; // mtry: exercises the per-node shuffle RNG.
    Options.MinSamplesLeaf = 1;
    Options.MinSamplesSplit = 2;
    Options.MaxDepth = 12;
    Options.Algorithm = TreeAlgorithm::Presorted;
    DecisionTree Fast(Options, Rng(Seed));
    ASSERT_TRUE(bool(Fast.fitRows(D, Rows)));
    Options.Algorithm = TreeAlgorithm::Naive;
    DecisionTree Reference(Options, Rng(Seed));
    ASSERT_TRUE(bool(Reference.fitRows(D, Rows)));
    expectIdenticalTrees(Fast, Reference);
  }
}

TEST(TreeAlgorithm, SharedPresortMatchesPerTreeSortAndNaive) {
  // The DatasetPresort path (used by RandomForest) orders ties on
  // (value, target) by row instead of by sample id; both orderings must
  // still grow bit-identical trees.
  for (uint64_t Seed = 21; Seed <= 26; ++Seed) {
    Dataset D = randomDataset(Seed, 90, 5, /*Quantize=*/true);
    DatasetPresort Master(D);
    Rng BootRng(Seed ^ 0x5EED);
    std::vector<size_t> Rows(D.numRows());
    for (size_t &R : Rows)
      R = BootRng.below(D.numRows());

    DecisionTreeOptions Options;
    Options.MaxFeatures = 2;
    Options.MinSamplesLeaf = 1;
    Options.MinSamplesSplit = 2;
    Options.Algorithm = TreeAlgorithm::Presorted;
    DecisionTree Shared(Options, Rng(Seed));
    ASSERT_TRUE(bool(Shared.fitRows(D, Rows, &Master)));
    DecisionTree PerTree(Options, Rng(Seed));
    ASSERT_TRUE(bool(PerTree.fitRows(D, Rows)));
    Options.Algorithm = TreeAlgorithm::Naive;
    DecisionTree Reference(Options, Rng(Seed));
    ASSERT_TRUE(bool(Reference.fitRows(D, Rows)));
    expectIdenticalTrees(Shared, PerTree);
    expectIdenticalTrees(Shared, Reference);
  }
}

TEST(TreeAlgorithm, PresortedMatchesNaiveOnDegenerateData) {
  // Constant targets and heavily tied features.
  Dataset D({"a", "b"});
  for (int I = 0; I < 30; ++I)
    D.addRow({static_cast<double>(I % 2), static_cast<double>(I % 3)},
             I % 5 == 0 ? 1.0 : 1.0);
  DecisionTreeOptions Options;
  Options.Algorithm = TreeAlgorithm::Presorted;
  DecisionTree Fast(Options);
  ASSERT_TRUE(bool(Fast.fit(D)));
  Options.Algorithm = TreeAlgorithm::Naive;
  DecisionTree Reference(Options);
  ASSERT_TRUE(bool(Reference.fit(D)));
  expectIdenticalTrees(Fast, Reference);
}

TEST(TreeAlgorithm, DefaultAlgorithmIsOverridable) {
  TreeAlgorithm Saved = defaultTreeAlgorithm();
  setDefaultTreeAlgorithm(TreeAlgorithm::Naive);
  EXPECT_EQ(defaultTreeAlgorithm(), TreeAlgorithm::Naive);
  setDefaultTreeAlgorithm(Saved);
  EXPECT_EQ(defaultTreeAlgorithm(), Saved);
}

TEST(TreeAlgorithm, PresortedGrowthLoopDoesNotAllocate) {
  Dataset D = randomDataset(99, 200, 6, /*Quantize=*/true);
  DecisionTreeOptions Options;
  Options.Algorithm = TreeAlgorithm::Presorted;
  Options.MaxFeatures = 2;
  Options.MinSamplesLeaf = 1;
  Options.MinSamplesSplit = 2;

  detail::TreeGrowPhaseProbe = [](bool Entering) {
    if (Entering)
      test::allocCountingArm();
    else
      test::allocCountingDisarm();
  };
  DecisionTree T(Options);
  ASSERT_TRUE(bool(T.fit(D)));
  detail::TreeGrowPhaseProbe = nullptr;

  EXPECT_GT(T.numNodes(), 1u);
  EXPECT_EQ(test::armedAllocationCount(), 0u)
      << "presorted growth loop allocated after scratch setup";
}

} // namespace
