//===- tests/ml/QuantizedModelTest.cpp - Fixed-point error-bound suite ----------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Property suite for ml::QuantizedModel: unlike the repo's bit-identical
// kernel pairs, quantized inference ships with an error *bound* — this
// suite proves |quantized - fp| relative error stays below the documented
// 1e-4 for every supported family, on synthetic data and on real
// machine-profiled paper datasets, and that the integer path itself is
// internally bit-identical (predict == predictBatch) and deterministic.
//
//===----------------------------------------------------------------------===//

#include "ml/QuantizedModel.h"

#include "core/DatasetBuilder.h"
#include "core/ModelZoo.h"
#include "ml/KnnRegressor.h"
#include "ml/LinearRegression.h"
#include "ml/NeuralNetwork.h"
#include "ml/RandomForest.h"
#include "pmc/PlatformEvents.h"
#include "sim/Machine.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

using namespace slope;
using namespace slope::ml;

namespace {

/// The documented bound (QuantizedModel.h); the suite asserts against
/// exactly this value, the serving CI gate re-checks it end to end.
constexpr double ErrorBound = 1e-4;

Dataset syntheticData(uint64_t Seed, size_t Rows, size_t Cols,
                      double Scale = 10.0) {
  Rng R(Seed);
  std::vector<std::string> Names;
  for (size_t J = 0; J < Cols; ++J)
    Names.push_back("f" + std::to_string(J));
  Dataset D(Names);
  for (size_t I = 0; I < Rows; ++I) {
    std::vector<double> X(Cols);
    double Y = 0;
    for (size_t J = 0; J < Cols; ++J) {
      X[J] = R.uniform(0, Scale);
      Y += static_cast<double>(J + 1) * X[J];
    }
    D.addRow(X, Y + R.gaussian(0, 0.5));
  }
  return D;
}

/// Builds the quantized twin of a fresh fit of \p Fp on \p Train and
/// checks its predictions on \p Test against the FP reference.
void expectQuantizedWithinBound(std::unique_ptr<Model> Fp,
                                const Dataset &Train, const Dataset &Test) {
  ASSERT_TRUE(bool(Fp->fit(Train)));
  const std::vector<double> Reference = Fp->predictBatch(Test);
  auto Q = QuantizedModel::build(std::move(Fp), Train);
  ASSERT_TRUE(bool(Q)) << Q.error().message();
  const std::vector<double> Quantized = (*Q)->predictBatch(Test);
  EXPECT_LT(maxRelativeError(Reference, Quantized), ErrorBound)
      << (*Q)->name();
}

TEST(QuantizedModel, LinearWithinBound) {
  Dataset Train = syntheticData(1, 120, 5);
  Dataset Test = syntheticData(2, 60, 5);
  expectQuantizedWithinBound(std::make_unique<LinearRegression>(), Train,
                             Test);
}

TEST(QuantizedModel, PaperLinearWithinBound) {
  // The paper configuration: zero intercept, non-negative coefficients.
  Dataset Train = syntheticData(3, 120, 5);
  Dataset Test = syntheticData(4, 60, 5);
  expectQuantizedWithinBound(std::make_unique<LinearRegression>(
                                 LinearRegressionOptions::paperDefault()),
                             Train, Test);
}

TEST(QuantizedModel, DecisionTreeWithinBound) {
  Dataset Train = syntheticData(5, 150, 4);
  Dataset Test = syntheticData(6, 60, 4);
  expectQuantizedWithinBound(std::make_unique<DecisionTree>(), Train, Test);
}

TEST(QuantizedModel, RandomForestWithinBound) {
  Dataset Train = syntheticData(7, 150, 4);
  Dataset Test = syntheticData(8, 60, 4);
  RandomForestOptions Options;
  Options.NumTrees = 30;
  expectQuantizedWithinBound(std::make_unique<RandomForest>(Options), Train,
                             Test);
}

TEST(QuantizedModel, IdentityNnWithinBound) {
  // An identity-transfer network is affine end to end; build() folds it
  // to effective linear weights by probing, so the twin must track it as
  // tightly as a plain LR.
  Dataset Train = syntheticData(9, 120, 5);
  Dataset Test = syntheticData(10, 60, 5);
  NeuralNetworkOptions Options;
  Options.Transfer = Activation::Identity;
  Options.Epochs = 60;
  expectQuantizedWithinBound(std::make_unique<NeuralNetwork>(Options), Train,
                             Test);
}

TEST(QuantizedModel, KnnWithinBound) {
  Dataset Train = syntheticData(11, 100, 4);
  Dataset Test = syntheticData(12, 50, 4);
  expectQuantizedWithinBound(std::make_unique<KnnRegressor>(), Train, Test);
}

TEST(QuantizedModel, KnnUnweightedWithinBound) {
  Dataset Train = syntheticData(13, 80, 3);
  Dataset Test = syntheticData(14, 40, 3);
  KnnOptions Options;
  Options.K = 3;
  Options.DistanceWeighted = false;
  expectQuantizedWithinBound(std::make_unique<KnnRegressor>(Options), Train,
                             Test);
}

TEST(QuantizedModel, WideFeatureScaleSpreadWithinBound) {
  // Columns spanning ten orders of magnitude — per-feature scales must
  // keep each column's resolution independent of the others.
  Rng R(15);
  Dataset Train({"tiny", "small", "unit", "big", "huge"});
  Dataset Test({"tiny", "small", "unit", "big", "huge"});
  const double Scales[5] = {1e-6, 1e-2, 1.0, 1e3, 1e6};
  for (int I = 0; I < 140; ++I) {
    std::vector<double> X(5);
    double Y = 0;
    for (size_t J = 0; J < 5; ++J) {
      X[J] = R.uniform(0, Scales[J]);
      Y += X[J] / Scales[J];
    }
    (I % 2 ? Test : Train).addRow(X, Y + R.gaussian(0, 0.01));
  }
  expectQuantizedWithinBound(std::make_unique<LinearRegression>(), Train,
                             Test);
}

TEST(QuantizedModel, ExtrapolationInsideHeadroomWithinBound) {
  // quantizeRow saturates at 16x the calibration maximum; queries at 4x
  // (well inside the headroom) must still satisfy the bound even though
  // calibration never saw them.
  Dataset Train = syntheticData(16, 120, 4, 10.0);
  Dataset Test = syntheticData(17, 60, 4, 40.0);
  expectQuantizedWithinBound(std::make_unique<LinearRegression>(), Train,
                             Test);
}

TEST(QuantizedModel, AllPaperFamiliesOnMachineDataWithinBound) {
  // The real thing: paper-configured models trained on a machine-profiled
  // (PMC..., energy) dataset, exactly what the serving engine deploys.
  sim::Machine M(sim::Platform::intelSkylakeServer(), 42);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
  core::DatasetBuilder Builder(M, Meter);
  std::vector<sim::CompoundApplication> Apps;
  for (uint64_t N = 7000; N <= 20000; N += 500)
    Apps.emplace_back(sim::Application(sim::KernelKind::MklDgemm, N));
  std::vector<std::string> Pa = pmc::skylakePaNames();
  auto Train = Builder.buildByName(Apps, {Pa[0], Pa[1], Pa[3], Pa[7]});
  ASSERT_TRUE(bool(Train));

  for (core::ModelFamily Family :
       {core::ModelFamily::LR, core::ModelFamily::RF, core::ModelFamily::NN,
        core::ModelFamily::Knn}) {
    std::unique_ptr<Model> Fp = core::fitPaperModel(
        Family, /*Seed=*/1, *Train, InferenceAlgorithm::Fp);
    const std::vector<double> Reference = Fp->predictBatch(*Train);
    auto Q = QuantizedModel::build(std::move(Fp), *Train);
    ASSERT_TRUE(bool(Q)) << core::modelFamilyName(Family) << ": "
                         << Q.error().message();
    const std::vector<double> Quantized = (*Q)->predictBatch(*Train);
    EXPECT_LT(maxRelativeError(Reference, Quantized), ErrorBound)
        << core::modelFamilyName(Family);
  }
}

TEST(QuantizedModel, PredictMatchesPredictBatchBitIdentical) {
  // The integer kernels are deterministic, so the single-row and batch
  // paths must agree bit for bit (the house predictBatch contract).
  Dataset Train = syntheticData(18, 120, 4);
  Dataset Test = syntheticData(19, 40, 4);
  RandomForestOptions ForestOptions;
  ForestOptions.NumTrees = 20;
  std::vector<std::unique_ptr<Model>> Models;
  Models.push_back(std::make_unique<LinearRegression>());
  Models.push_back(std::make_unique<DecisionTree>());
  Models.push_back(std::make_unique<RandomForest>(ForestOptions));
  Models.push_back(std::make_unique<KnnRegressor>());
  for (auto &Fp : Models) {
    ASSERT_TRUE(bool(Fp->fit(Train)));
    auto Q = QuantizedModel::build(std::move(Fp), Train);
    ASSERT_TRUE(bool(Q)) << Q.error().message();
    const std::vector<double> Batch = (*Q)->predictBatch(Test);
    for (size_t R = 0; R < Test.numRows(); ++R) {
      const double Single = (*Q)->predict(Test.row(R));
      EXPECT_EQ(std::memcmp(&Batch[R], &Single, sizeof(double)), 0)
          << (*Q)->name() << " row " << R;
    }
  }
}

TEST(QuantizedModel, NamePrefixesReference) {
  Dataset Train = syntheticData(20, 80, 3);
  auto Fp = std::make_unique<LinearRegression>();
  ASSERT_TRUE(bool(Fp->fit(Train)));
  auto Q = QuantizedModel::build(std::move(Fp), Train);
  ASSERT_TRUE(bool(Q));
  EXPECT_EQ((*Q)->name(), "QLR");
  EXPECT_EQ((*Q)->reference().name(), "LR");
}

TEST(QuantizedModel, OutputBaseIsAPowerOfTwo) {
  // Power-of-two scales make every rescale exact in FP — the foundation
  // of the error-bound argument.
  Dataset Train = syntheticData(21, 100, 4);
  auto Fp = std::make_unique<LinearRegression>();
  ASSERT_TRUE(bool(Fp->fit(Train)));
  auto Q = QuantizedModel::build(std::move(Fp), Train);
  ASSERT_TRUE(bool(Q));
  const double Log2 = std::log2((*Q)->outputBase());
  EXPECT_EQ(Log2, std::floor(Log2));
  EXPECT_GT((*Q)->outputBase(), 0.0);
}

TEST(QuantizedModel, RefusesNonIdentityNn) {
  Dataset Train = syntheticData(22, 80, 3);
  NeuralNetworkOptions Options;
  Options.Transfer = Activation::ReLU;
  Options.Epochs = 10;
  auto Fp = std::make_unique<NeuralNetwork>(Options);
  ASSERT_TRUE(bool(Fp->fit(Train)));
  auto Q = QuantizedModel::build(std::move(Fp), Train);
  ASSERT_FALSE(bool(Q));
  EXPECT_NE(Q.error().message().find("identity"), std::string::npos);
}

TEST(QuantizedModel, RefusesDirectFit) {
  Dataset Train = syntheticData(23, 80, 3);
  auto Fp = std::make_unique<LinearRegression>();
  ASSERT_TRUE(bool(Fp->fit(Train)));
  auto Q = QuantizedModel::build(std::move(Fp), Train);
  ASSERT_TRUE(bool(Q));
  EXPECT_FALSE(bool((*Q)->fit(Train)));
}

TEST(QuantizedModel, RefusesEmptyCalibration) {
  Dataset Train = syntheticData(24, 80, 3);
  auto Fp = std::make_unique<LinearRegression>();
  ASSERT_TRUE(bool(Fp->fit(Train)));
  Dataset Empty({"f0", "f1", "f2"});
  auto Q = QuantizedModel::build(std::move(Fp), Empty);
  ASSERT_FALSE(bool(Q));
}

TEST(QuantizedModel, RefusesWidthMismatch) {
  Dataset Train = syntheticData(25, 80, 3);
  auto Fp = std::make_unique<LinearRegression>();
  ASSERT_TRUE(bool(Fp->fit(Train)));
  Dataset Wider = syntheticData(26, 20, 5);
  auto Q = QuantizedModel::build(std::move(Fp), Wider);
  ASSERT_FALSE(bool(Q));
}

TEST(QuantizedModel, RefusesNullModel) {
  Dataset Train = syntheticData(27, 20, 3);
  auto Q = QuantizedModel::build(nullptr, Train);
  ASSERT_FALSE(bool(Q));
}

TEST(MaxRelativeError, BasicProperties) {
  EXPECT_EQ(maxRelativeError({}, {}), 0.0);
  EXPECT_EQ(maxRelativeError({1.0, -2.0, 3.0}, {1.0, -2.0, 3.0}), 0.0);
  // |1.1 - 1.0| / 1.0 = 0.1 dominates.
  EXPECT_NEAR(maxRelativeError({1.0, 2.0}, {1.1, 2.0}), 0.1, 1e-12);
  // Near-zero reference entries are floored at 1e-9 x max|ref| instead of
  // dividing by ~0.
  EXPECT_LT(maxRelativeError({1.0, 1e-300}, {1.0, 2e-300}), 1e-200);
}

TEST(InferenceAlgorithm, DefaultIsOverridable) {
  const InferenceAlgorithm Saved = defaultInferenceAlgorithm();
  setDefaultInferenceAlgorithm(InferenceAlgorithm::Quantized);
  EXPECT_EQ(defaultInferenceAlgorithm(), InferenceAlgorithm::Quantized);
  setDefaultInferenceAlgorithm(InferenceAlgorithm::Fp);
  EXPECT_EQ(defaultInferenceAlgorithm(), InferenceAlgorithm::Fp);
  setDefaultInferenceAlgorithm(Saved);
}

} // namespace
