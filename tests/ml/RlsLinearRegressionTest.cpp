//===- tests/ml/RlsLinearRegressionTest.cpp - Online RLS tests -----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/RlsLinearRegression.h"

#include "ml/LinearRegression.h"
#include "support/Rng.h"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>
#include <numeric>

using namespace slope;
using namespace slope::ml;

namespace {

/// Restores the process-wide fit algorithm when a test returns.
struct FitAlgorithmGuard {
  FitAlgorithm Saved = defaultFitAlgorithm();
  ~FitAlgorithmGuard() { setDefaultFitAlgorithm(Saved); }
};

/// Noisy y = 3a + 2b + 0.5c (optionally plus an intercept).
Dataset makeStream(size_t N, uint64_t Seed, double Intercept = 0.0) {
  Rng R(Seed);
  Dataset D({"a", "b", "c"});
  for (size_t I = 0; I < N; ++I) {
    double A = R.uniform(0.5, 10), B = R.uniform(0.5, 10),
           C = R.uniform(0.5, 10);
    D.addRow({A, B, C},
             Intercept + 3 * A + 2 * B + 0.5 * C + R.gaussian(0, 0.05));
  }
  return D;
}

double relDiff(double A, double B) {
  return A != 0 ? std::fabs(B - A) / std::fabs(A) : std::fabs(B);
}

} // namespace

TEST(RlsLinearRegression, SeedFitMatchesUnconstrainedLinearRegression) {
  // fit() solves the exact ridge system LinearRegression solves with the
  // non-negativity constraint off, so the seed coefficients must agree
  // to solver precision.
  Dataset Train = makeStream(120, 1);
  RlsLinearRegression Rls;
  ASSERT_TRUE(bool(Rls.fit(Train)));

  LinearRegressionOptions Ref;
  Ref.ZeroIntercept = true;
  Ref.NonNegative = false;
  Ref.Lambda = 1e-6;
  LinearRegression Lr(Ref);
  ASSERT_TRUE(bool(Lr.fit(Train)));

  ASSERT_EQ(Rls.coefficients().size(), Lr.coefficients().size());
  for (size_t C = 0; C < Rls.coefficients().size(); ++C)
    EXPECT_LT(relDiff(Lr.coefficients()[C], Rls.coefficients()[C]), 1e-10);
  EXPECT_DOUBLE_EQ(Rls.intercept(), 0.0);
  EXPECT_EQ(Rls.observations(), 120u);
}

TEST(RlsLinearRegression, EveryStreamPrefixAgreesWithRefitWithin1e8) {
  // The property gate: after EVERY prefix of a shuffled stream, the
  // Sherman-Morrison state must agree with a from-scratch batch refit
  // over seed + prefix to < 1e-8 relative error in both coefficients and
  // predictions. This is the tolerance contract the serving engine's
  // rls-vs-refit CI gate is built on.
  Dataset Stream = makeStream(240, 2);
  std::vector<size_t> Order(Stream.numRows());
  std::iota(Order.begin(), Order.end(), size_t(0));
  Rng Shuffler(99);
  for (size_t I = Order.size(); I > 1; --I)
    std::swap(Order[I - 1], Order[Shuffler.below(I)]);

  const size_t SeedRows = 40;
  Dataset History(Stream.featureNames());
  for (size_t I = 0; I < SeedRows; ++I)
    History.addRow(Stream.row(Order[I]), Stream.target(Order[I]));

  RlsLinearRegression Streaming;
  ASSERT_TRUE(bool(Streaming.fit(History)));

  const std::vector<std::vector<double>> Probes = {
      {1, 1, 1}, {9.5, 0.6, 4.2}, {0.5, 8.8, 2.1}};
  for (size_t I = SeedRows; I < Order.size(); ++I) {
    Streaming.update(Stream.row(Order[I]), Stream.target(Order[I]));
    History.addRow(Stream.row(Order[I]), Stream.target(Order[I]));
    RlsLinearRegression Reference;
    ASSERT_TRUE(bool(Reference.fit(History)));
    for (size_t C = 0; C < Streaming.coefficients().size(); ++C)
      ASSERT_LT(relDiff(Reference.coefficients()[C],
                        Streaming.coefficients()[C]),
                1e-8)
          << "prefix " << I << " coefficient " << C;
    for (const std::vector<double> &P : Probes)
      ASSERT_LT(relDiff(Reference.predict(P), Streaming.predict(P)), 1e-8)
          << "prefix " << I;
  }
  EXPECT_EQ(Streaming.observations(), Stream.numRows());
}

TEST(RlsLinearRegression, UpdatesConvergeToTruthOnCleanData) {
  // Seed on a tiny batch, then stream many exact rows: the online state
  // must converge to the generating coefficients.
  Rng R(3);
  Dataset Seed({"a", "b"});
  for (int I = 0; I < 8; ++I) {
    double A = R.uniform(1, 5), B = R.uniform(1, 5);
    Seed.addRow({A, B}, 4 * A + 1.5 * B);
  }
  RlsLinearRegression M;
  ASSERT_TRUE(bool(M.fit(Seed)));
  for (int I = 0; I < 500; ++I) {
    double A = R.uniform(1, 5), B = R.uniform(1, 5);
    M.update({A, B}, 4 * A + 1.5 * B);
  }
  EXPECT_NEAR(M.coefficients()[0], 4.0, 1e-6);
  EXPECT_NEAR(M.coefficients()[1], 1.5, 1e-6);
  EXPECT_NEAR(M.predict({2, 2}), 11.0, 1e-5);
}

TEST(RlsLinearRegression, InterceptModeTracksRefit) {
  RlsOptions Options;
  Options.ZeroIntercept = false;
  Dataset Stream = makeStream(150, 4, /*Intercept=*/7.0);

  Dataset History(Stream.featureNames());
  for (size_t I = 0; I < 50; ++I)
    History.addRow(Stream.row(I), Stream.target(I));
  RlsLinearRegression Streaming(Options);
  ASSERT_TRUE(bool(Streaming.fit(History)));
  for (size_t I = 50; I < Stream.numRows(); ++I) {
    Streaming.update(Stream.row(I), Stream.target(I));
    History.addRow(Stream.row(I), Stream.target(I));
  }
  RlsLinearRegression Reference(Options);
  ASSERT_TRUE(bool(Reference.fit(History)));

  EXPECT_LT(relDiff(Reference.intercept(), Streaming.intercept()), 1e-8);
  for (size_t C = 0; C < Streaming.coefficients().size(); ++C)
    EXPECT_LT(
        relDiff(Reference.coefficients()[C], Streaming.coefficients()[C]),
        1e-8);
  EXPECT_NEAR(Streaming.intercept(), 7.0, 0.1);
}

TEST(RlsLinearRegression, PredictVariantsAgreeBitExactly) {
  Dataset Train = makeStream(80, 5);
  RlsLinearRegression M;
  ASSERT_TRUE(bool(M.fit(Train)));
  for (int I = 0; I < 30; ++I)
    M.update(Train.row(I), Train.target(I));

  std::vector<double> Batch = M.predictBatch(Train);
  ASSERT_EQ(Batch.size(), Train.numRows());
  for (size_t I = 0; I < Train.numRows(); ++I) {
    std::vector<double> Row = Train.row(I);
    ASSERT_EQ(Batch[I], M.predict(Row)) << "row " << I;
    ASSERT_EQ(Batch[I], M.predictRow(Row.data()));
  }
}

TEST(RlsLinearRegression, RejectsDegenerateFits) {
  RlsLinearRegression M;
  EXPECT_FALSE(bool(M.fit(Dataset({"a"}))));

  RlsOptions BadLambda;
  BadLambda.Lambda = 0;
  RlsLinearRegression Bad(BadLambda);
  EXPECT_FALSE(bool(Bad.fit(makeStream(10, 6))));
}

TEST(RlsLinearRegression, FitAlgorithmSwitchRoundTrips) {
  FitAlgorithmGuard Guard;
  setDefaultFitAlgorithm(FitAlgorithm::Refit);
  EXPECT_EQ(defaultFitAlgorithm(), FitAlgorithm::Refit);
  setDefaultFitAlgorithm(FitAlgorithm::Rls);
  EXPECT_EQ(defaultFitAlgorithm(), FitAlgorithm::Rls);
}
