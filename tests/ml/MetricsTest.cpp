//===- tests/ml/MetricsTest.cpp - Metric tests ---------------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/Metrics.h"

#include "ml/LinearRegression.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::ml;

TEST(Metrics, MseKnownValue) {
  EXPECT_DOUBLE_EQ(mse({1, 2, 3}, {1, 2, 5}), 4.0 / 3.0);
}

TEST(Metrics, MaeKnownValue) {
  EXPECT_DOUBLE_EQ(mae({1, 2, 3}, {2, 2, 5}), 1.0);
}

TEST(Metrics, PerfectPredictionsScoreZeroErrorAndUnitR2) {
  std::vector<double> Y = {1, 5, 9, 2};
  EXPECT_DOUBLE_EQ(mse(Y, Y), 0.0);
  EXPECT_DOUBLE_EQ(r2(Y, Y), 1.0);
}

TEST(Metrics, MeanPredictorHasZeroR2) {
  std::vector<double> Actual = {1, 2, 3, 4};
  std::vector<double> MeanPred(4, 2.5);
  EXPECT_NEAR(r2(MeanPred, Actual), 0.0, 1e-12);
}

TEST(Metrics, WorseThanMeanGivesNegativeR2) {
  std::vector<double> Actual = {1, 2, 3, 4};
  std::vector<double> Bad = {4, 3, 2, 1};
  EXPECT_LT(r2(Bad, Actual), 0.0);
}

TEST(Metrics, EvaluateModelProducesPaperTriple) {
  Rng R(1);
  Dataset Train({"x"});
  for (int I = 0; I < 50; ++I) {
    double X = R.uniform(1, 10);
    Train.addRow({X}, 2 * X);
  }
  Dataset Test({"x"});
  Test.addRow({5}, 11); // Model predicts 10: ~9.09% error.
  Test.addRow({2}, 4);  // Exact.
  LinearRegression M;
  ASSERT_TRUE(bool(M.fit(Train)));
  stats::ErrorSummary S = evaluateModel(M, Test);
  EXPECT_NEAR(S.Max, 100.0 * 1.0 / 11.0, 0.1);
  EXPECT_LT(S.Min, 0.1);
}

TEST(Metrics, KFoldErrorIsSmallForLearnableData) {
  Rng R(2);
  Dataset D({"x"});
  for (int I = 0; I < 60; ++I) {
    double X = R.uniform(1, 10);
    D.addRow({X}, 3 * X);
  }
  double Avg = kFoldAvgError(D, 5, 7, [] {
    return std::make_unique<LinearRegression>();
  });
  EXPECT_LT(Avg, 1.0);
}

TEST(Metrics, KFoldDeterministicPerSeed) {
  Rng R(3);
  Dataset D({"x"});
  for (int I = 0; I < 40; ++I) {
    double X = R.uniform(1, 10);
    D.addRow({X}, 3 * X + R.gaussian(0, 0.5));
  }
  auto Make = [] { return std::make_unique<LinearRegression>(); };
  EXPECT_DOUBLE_EQ(kFoldAvgError(D, 4, 11, Make),
                   kFoldAvgError(D, 4, 11, Make));
}
