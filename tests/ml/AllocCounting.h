//===- tests/ml/AllocCounting.h - Armed operator-new counter ----*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Shared operator new/delete replacement that counts allocations while
// armed. The zero-allocation property tests (presorted tree growth, the
// batched NN epoch loop) arm it from their phase probes; it lives in its
// own translation unit because the global allocation functions may only
// be replaced once per test binary.
//
//===----------------------------------------------------------------------===//

#ifndef SLOPE_TESTS_ML_ALLOCCOUNTING_H
#define SLOPE_TESTS_ML_ALLOCCOUNTING_H

#include <cstddef>

namespace slope {
namespace test {

/// Resets the counter and starts counting global operator new calls.
void allocCountingArm();

/// Stops counting; armedAllocationCount() keeps the final tally.
void allocCountingDisarm();

/// \returns the number of operator new calls seen while armed.
size_t armedAllocationCount();

} // namespace test
} // namespace slope

#endif // SLOPE_TESTS_ML_ALLOCCOUNTING_H
