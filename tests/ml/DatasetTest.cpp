//===- tests/ml/DatasetTest.cpp - Dataset tests --------------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/Dataset.h"

#include <cstdint>
#include <gtest/gtest.h>

using namespace slope;
using namespace slope::ml;

namespace {
Dataset makeToy() {
  Dataset D({"a", "b", "c"});
  D.addRow({1, 10, 100}, 1000);
  D.addRow({2, 20, 200}, 2000);
  D.addRow({3, 30, 300}, 3000);
  D.addRow({4, 40, 400}, 4000);
  return D;
}
} // namespace

TEST(Dataset, Shape) {
  Dataset D = makeToy();
  EXPECT_EQ(D.numRows(), 4u);
  EXPECT_EQ(D.numFeatures(), 3u);
}

TEST(Dataset, RowAndTargetAccess) {
  Dataset D = makeToy();
  EXPECT_EQ(D.row(1), (std::vector<double>{2, 20, 200}));
  EXPECT_DOUBLE_EQ(D.target(2), 3000);
}

TEST(Dataset, FeatureColumn) {
  Dataset D = makeToy();
  const AlignedBuffer<double> &Col = D.featureColumn(1);
  EXPECT_EQ(std::vector<double>(Col.begin(), Col.end()),
            (std::vector<double>{10, 20, 30, 40}));
}

TEST(Dataset, ColumnsAreAlignedAndLinePadded) {
  Dataset D = makeToy();
  for (size_t C = 0; C < D.numFeatures(); ++C) {
    const AlignedBuffer<double> &Col = D.featureColumn(C);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(Col.data()) % SimdAlignment, 0u);
    EXPECT_EQ(Col.capacity() % (SimdAlignment / sizeof(double)), 0u);
    EXPECT_GE(Col.capacity(), Col.size());
  }
}

TEST(Dataset, FeatureMatrixMatchesRows) {
  Dataset D = makeToy();
  stats::Matrix M = D.featureMatrix();
  EXPECT_EQ(M.rows(), 4u);
  EXPECT_EQ(M.cols(), 3u);
  EXPECT_DOUBLE_EQ(M.at(3, 2), 400);
}

TEST(Dataset, IndexOfFeature) {
  Dataset D = makeToy();
  EXPECT_EQ(D.indexOfFeature("b"), 1u);
  EXPECT_EQ(D.indexOfFeature("missing"), D.numFeatures());
}

TEST(Dataset, SelectFeaturesReordersColumns) {
  Dataset D = makeToy();
  Dataset S = D.selectFeatures({"c", "a"});
  EXPECT_EQ(S.numFeatures(), 2u);
  EXPECT_EQ(S.row(0), (std::vector<double>{100, 1}));
  EXPECT_DOUBLE_EQ(S.target(0), 1000); // Targets preserved.
}

TEST(Dataset, SelectRows) {
  Dataset D = makeToy();
  Dataset S = D.selectRows({3, 0});
  EXPECT_EQ(S.numRows(), 2u);
  EXPECT_DOUBLE_EQ(S.target(0), 4000);
  EXPECT_DOUBLE_EQ(S.target(1), 1000);
}

TEST(Dataset, SplitPartitionsAllRows) {
  Dataset D = makeToy();
  auto [Train, Test] = D.split(0.5, Rng(1));
  EXPECT_EQ(Train.numRows() + Test.numRows(), D.numRows());
  EXPECT_EQ(Test.numRows(), 2u);
}

TEST(Dataset, SplitIsDeterministicPerSeed) {
  Dataset D = makeToy();
  auto [TrainA, TestA] = D.split(0.5, Rng(7));
  auto [TrainB, TestB] = D.split(0.5, Rng(7));
  for (size_t I = 0; I < TestA.numRows(); ++I)
    EXPECT_EQ(TestA.target(I), TestB.target(I));
}

TEST(Dataset, SplitZeroFractionKeepsAllForTraining) {
  Dataset D = makeToy();
  auto [Train, Test] = D.split(0.0, Rng(1));
  EXPECT_EQ(Train.numRows(), 4u);
  EXPECT_EQ(Test.numRows(), 0u);
}

TEST(Dataset, SplitAtIsPositional) {
  Dataset D = makeToy();
  auto [Train, Test] = D.splitAt(3);
  EXPECT_EQ(Train.numRows(), 3u);
  ASSERT_EQ(Test.numRows(), 1u);
  EXPECT_DOUBLE_EQ(Test.target(0), 4000);
}

TEST(DatasetDeath, MismatchedRowWidthAsserts) {
  Dataset D({"a", "b"});
  EXPECT_DEATH(D.addRow({1.0}, 2.0), "width");
}

TEST(Dataset, ColumnViewIsContiguousPerFeature) {
  Dataset D = makeToy();
  for (size_t C = 0; C < D.numFeatures(); ++C) {
    const double *Col = D.column(C);
    for (size_t R = 0; R < D.numRows(); ++R)
      EXPECT_DOUBLE_EQ(Col[R], D.row(R)[C]) << "col " << C << " row " << R;
  }
}

TEST(Dataset, GatherRowMatchesRowCopy) {
  Dataset D = makeToy();
  std::vector<double> Buf;
  for (size_t R = 0; R < D.numRows(); ++R) {
    D.gatherRow(R, Buf);
    EXPECT_EQ(Buf, D.row(R));
  }
  // The buffer is reused across calls without shrinking surprises.
  EXPECT_EQ(Buf.size(), D.numFeatures());
}

TEST(Dataset, ReserveRowsDoesNotChangeContents) {
  Dataset D({"a", "b"});
  D.reserveRows(64);
  EXPECT_EQ(D.numRows(), 0u);
  D.addRow({1, 2}, 3);
  D.addRow({4, 5}, 6);
  EXPECT_EQ(D.numRows(), 2u);
  EXPECT_EQ(D.row(1), (std::vector<double>{4, 5}));
  EXPECT_DOUBLE_EQ(D.target(1), 6);
}

TEST(Dataset, ClearRowsKeepsSchemaAndRefills) {
  Dataset D({"a", "b"});
  double Row0[] = {1, 2};
  double Row1[] = {4, 5};
  D.addRow(Row0, 3);
  D.addRow(Row1, 6);
  ASSERT_EQ(D.numRows(), 2u);
  EXPECT_EQ(D.row(1), (std::vector<double>{4, 5}));
  EXPECT_DOUBLE_EQ(D.target(0), 3);
  D.clearRows();
  EXPECT_EQ(D.numRows(), 0u);
  EXPECT_EQ(D.numFeatures(), 2u);
  // Refill after clearing: fresh contents, same schema.
  double Row2[] = {7, 8};
  D.addRow(Row2, 9);
  ASSERT_EQ(D.numRows(), 1u);
  EXPECT_EQ(D.row(0), (std::vector<double>{7, 8}));
  EXPECT_DOUBLE_EQ(D.target(0), 9);
}

TEST(Dataset, SelectFeaturesCopiesWholeColumns) {
  Dataset D = makeToy();
  Dataset S = D.selectFeatures({"c", "a"});
  const double *C0 = S.column(0);
  const double *C1 = S.column(1);
  for (size_t R = 0; R < D.numRows(); ++R) {
    EXPECT_DOUBLE_EQ(C0[R], D.column(2)[R]);
    EXPECT_DOUBLE_EQ(C1[R], D.column(0)[R]);
    EXPECT_DOUBLE_EQ(S.target(R), D.target(R));
  }
}

TEST(Dataset, SelectRowsGathersEveryColumn) {
  Dataset D = makeToy();
  Dataset S = D.selectRows({3, 1, 1});
  ASSERT_EQ(S.numRows(), 3u);
  EXPECT_EQ(S.row(0), D.row(3));
  EXPECT_EQ(S.row(1), D.row(1));
  EXPECT_EQ(S.row(2), D.row(1));
  const double *Col = S.column(2);
  EXPECT_DOUBLE_EQ(Col[0], 400);
  EXPECT_DOUBLE_EQ(Col[1], 200);
  EXPECT_DOUBLE_EQ(Col[2], 200);
}
