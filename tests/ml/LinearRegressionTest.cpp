//===- tests/ml/LinearRegressionTest.cpp - Linear model tests ------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/LinearRegression.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::ml;

namespace {
/// y = 3a + 2b, no intercept, exact.
Dataset makeLinearData(size_t N, uint64_t Seed, double Intercept = 0.0) {
  Rng R(Seed);
  Dataset D({"a", "b"});
  for (size_t I = 0; I < N; ++I) {
    double A = R.uniform(0, 10), B = R.uniform(0, 10);
    D.addRow({A, B}, Intercept + 3 * A + 2 * B);
  }
  return D;
}
} // namespace

TEST(LinearRegression, PaperConfigRecoversNonNegativeTruth) {
  LinearRegression M;
  ASSERT_TRUE(bool(M.fit(makeLinearData(50, 1))));
  EXPECT_NEAR(M.coefficients()[0], 3.0, 1e-4);
  EXPECT_NEAR(M.coefficients()[1], 2.0, 1e-4);
  EXPECT_DOUBLE_EQ(M.intercept(), 0.0);
}

TEST(LinearRegression, PredictionMatchesFit) {
  LinearRegression M;
  ASSERT_TRUE(bool(M.fit(makeLinearData(50, 2))));
  EXPECT_NEAR(M.predict({1, 1}), 5.0, 1e-3);
  EXPECT_NEAR(M.predict({0, 0}), 0.0, 1e-3);
}

TEST(LinearRegression, PaperConfigNeverProducesNegativeCoefficients) {
  // Target anti-correlated with feature b.
  Rng R(3);
  Dataset D({"a", "b"});
  for (int I = 0; I < 60; ++I) {
    double A = R.uniform(0, 10), B = R.uniform(0, 10);
    D.addRow({A, B}, 5 * A - 2 * B + 25);
  }
  LinearRegression M;
  ASSERT_TRUE(bool(M.fit(D)));
  for (double C : M.coefficients())
    EXPECT_GE(C, 0.0);
}

TEST(LinearRegression, OlsRecoversIntercept) {
  LinearRegression M(LinearRegressionOptions::ols());
  ASSERT_TRUE(bool(M.fit(makeLinearData(60, 4, /*Intercept=*/7.0))));
  EXPECT_NEAR(M.intercept(), 7.0, 1e-6);
  EXPECT_NEAR(M.coefficients()[0], 3.0, 1e-6);
}

TEST(LinearRegression, OlsAllowsNegativeCoefficients) {
  Rng R(5);
  Dataset D({"a", "b"});
  for (int I = 0; I < 60; ++I) {
    double A = R.uniform(0, 10), B = R.uniform(0, 10);
    D.addRow({A, B}, 5 * A - 2 * B);
  }
  LinearRegressionOptions Options = LinearRegressionOptions::ols();
  Options.ZeroIntercept = true;
  LinearRegression M(Options);
  ASSERT_TRUE(bool(M.fit(D)));
  EXPECT_NEAR(M.coefficients()[1], -2.0, 1e-6);
}

TEST(LinearRegression, RidgeShrinksCoefficients) {
  Dataset D = makeLinearData(40, 6);
  LinearRegressionOptions Heavy = LinearRegressionOptions::paperDefault();
  Heavy.Lambda = 1e4;
  LinearRegression Plain, Shrunk(Heavy);
  ASSERT_TRUE(bool(Plain.fit(D)));
  ASSERT_TRUE(bool(Shrunk.fit(D)));
  EXPECT_LT(Shrunk.coefficients()[0], Plain.coefficients()[0]);
}

TEST(LinearRegression, RejectsEmptyDataset) {
  LinearRegression M;
  Dataset D({"a"});
  auto Fit = M.fit(D);
  ASSERT_FALSE(bool(Fit));
  EXPECT_NE(Fit.error().message().find("empty"), std::string::npos);
}

TEST(LinearRegression, RejectsZeroFeatures) {
  LinearRegression M;
  Dataset D{std::vector<std::string>{}};
  D.addRow({}, 1.0);
  EXPECT_FALSE(bool(M.fit(D)));
}

TEST(LinearRegression, NameIsLR) {
  EXPECT_EQ(LinearRegression().name(), "LR");
}

TEST(LinearRegressionDeath, PredictBeforeFitAsserts) {
  LinearRegression M;
  EXPECT_DEATH((void)M.predict({1.0}), "unfitted");
}

// Property: on exactly linear non-negative data the residual is ~0
// regardless of dimension.
class LinearRecovery : public ::testing::TestWithParam<size_t> {};

TEST_P(LinearRecovery, ExactFitOnConsistentData) {
  size_t Dim = GetParam();
  Rng R(100 + Dim);
  std::vector<double> Truth;
  for (size_t J = 0; J < Dim; ++J)
    Truth.push_back(R.uniform(0.1, 5));
  std::vector<std::string> Names;
  for (size_t J = 0; J < Dim; ++J)
    Names.push_back("f" + std::to_string(J));
  Dataset D(Names);
  for (size_t I = 0; I < 20 * Dim + 10; ++I) {
    std::vector<double> X;
    double Y = 0;
    for (size_t J = 0; J < Dim; ++J) {
      X.push_back(R.uniform(0, 3));
      Y += Truth[J] * X.back();
    }
    D.addRow(X, Y);
  }
  LinearRegression M;
  ASSERT_TRUE(bool(M.fit(D)));
  for (size_t J = 0; J < Dim; ++J)
    EXPECT_NEAR(M.coefficients()[J], Truth[J], 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Dims, LinearRecovery,
                         ::testing::Values(1, 2, 3, 5, 8));
