//===- tests/ml/RandomForestTest.cpp - Forest regression tests -----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/RandomForest.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::ml;

namespace {
Dataset makeSmoothData(size_t N, uint64_t Seed) {
  Rng R(Seed);
  Dataset D({"a", "b"});
  for (size_t I = 0; I < N; ++I) {
    double A = R.uniform(0, 10), B = R.uniform(0, 10);
    D.addRow({A, B}, 2 * A + 5 * B + R.gaussian(0, 0.1));
  }
  return D;
}
} // namespace

TEST(RandomForest, FitsSmoothFunctionInSample) {
  RandomForestOptions Options;
  Options.NumTrees = 50;
  RandomForest M(Options);
  Dataset D = makeSmoothData(300, 1);
  ASSERT_TRUE(bool(M.fit(D)));
  double WorstErr = 0;
  for (size_t I = 0; I < D.numRows(); ++I)
    WorstErr = std::max(
        WorstErr, std::fabs(M.predict(D.row(I)) - D.target(I)));
  EXPECT_LT(WorstErr, 10.0); // Interpolation, not exactness.
}

TEST(RandomForest, BuildsRequestedNumberOfTrees) {
  RandomForestOptions Options;
  Options.NumTrees = 7;
  RandomForest M(Options);
  ASSERT_TRUE(bool(M.fit(makeSmoothData(50, 2))));
  EXPECT_EQ(M.numTrees(), 7u);
}

TEST(RandomForest, DeterministicPerSeed) {
  RandomForestOptions Options;
  Options.NumTrees = 20;
  Options.Seed = 99;
  Dataset D = makeSmoothData(100, 3);
  RandomForest A(Options), B(Options);
  ASSERT_TRUE(bool(A.fit(D)));
  ASSERT_TRUE(bool(B.fit(D)));
  for (double X = 0; X < 10; X += 0.7)
    EXPECT_DOUBLE_EQ(A.predict({X, 10 - X}), B.predict({X, 10 - X}));
}

TEST(RandomForest, DifferentSeedsDifferentForests) {
  RandomForestOptions OA, OB;
  OA.NumTrees = OB.NumTrees = 20;
  OA.Seed = 1;
  OB.Seed = 2;
  Dataset D = makeSmoothData(100, 4);
  RandomForest A(OA), B(OB);
  ASSERT_TRUE(bool(A.fit(D)));
  ASSERT_TRUE(bool(B.fit(D)));
  bool AnyDifferent = false;
  for (double X = 0.5; X < 10; X += 0.9)
    if (A.predict({X, X}) != B.predict({X, X}))
      AnyDifferent = true;
  EXPECT_TRUE(AnyDifferent);
}

TEST(RandomForest, CannotExtrapolate) {
  // Central to the paper's Class A findings: compound applications push
  // counters past the training range and the forest saturates.
  Dataset D({"x"});
  for (int I = 1; I <= 100; ++I)
    D.addRow({static_cast<double>(I)}, static_cast<double>(3 * I));
  RandomForest M;
  ASSERT_TRUE(bool(M.fit(D)));
  double Saturated = M.predict({1e6});
  EXPECT_LE(Saturated, 300.0 + 1e-9);
  // Linear truth at 1e6 would be 3e6: relative error ~100%.
  EXPECT_GT(std::fabs(Saturated - 3e6) / 3e6, 0.9);
}

TEST(RandomForest, OobMseIsFiniteAndSmallOnCleanData) {
  RandomForestOptions Options;
  Options.NumTrees = 60;
  RandomForest M(Options);
  ASSERT_TRUE(bool(M.fit(makeSmoothData(400, 5))));
  EXPECT_TRUE(std::isfinite(M.oobMse()));
  EXPECT_LT(M.oobMse(), 25.0);
}

TEST(RandomForest, PredictAllMatchesPredict) {
  Dataset D = makeSmoothData(50, 6);
  RandomForest M;
  ASSERT_TRUE(bool(M.fit(D)));
  std::vector<double> All = M.predictAll(D);
  for (size_t I = 0; I < D.numRows(); I += 7)
    EXPECT_DOUBLE_EQ(All[I], M.predict(D.row(I)));
}

TEST(RandomForest, RejectsEmptyDataset) {
  RandomForest M;
  Dataset D({"x"});
  EXPECT_FALSE(bool(M.fit(D)));
}

TEST(RandomForest, NameIsRF) {
  EXPECT_EQ(RandomForest().name(), "RF");
}

// Property: forest predictions always stay within the training target
// hull, for several seeds and tree counts.
class ForestHull : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ForestHull, PredictionsWithinTargetRange) {
  Rng R(GetParam());
  Dataset D({"a"});
  double Lo = 1e300, Hi = -1e300;
  for (int I = 0; I < 80; ++I) {
    double Y = R.uniform(-50, 50);
    Lo = std::min(Lo, Y);
    Hi = std::max(Hi, Y);
    D.addRow({R.uniform(-10, 10)}, Y);
  }
  RandomForestOptions Options;
  Options.NumTrees = 10 + GetParam() % 30;
  Options.Seed = GetParam();
  RandomForest M(Options);
  ASSERT_TRUE(bool(M.fit(D)));
  for (double X = -30; X <= 30; X += 3.7) {
    double P = M.predict({X});
    EXPECT_GE(P, Lo - 1e-9);
    EXPECT_LE(P, Hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestHull, ::testing::Range<uint64_t>(0, 8));
