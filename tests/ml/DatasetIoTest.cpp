//===- tests/ml/DatasetIoTest.cpp - Dataset CSV I/O tests -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/DatasetIo.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace slope;
using namespace slope::ml;

namespace {
Dataset makeToy() {
  Dataset D({"IDQ_MS_UOPS", "L2_RQSTS_MISS"});
  D.addRow({1.5e9, 2.25e8}, 341.5);
  D.addRow({3.25e9, 4.5e8}, 702.125);
  return D;
}
} // namespace

TEST(DatasetIo, CsvHasFeatureAndTargetColumns) {
  std::string Text = datasetToCsv(makeToy());
  EXPECT_EQ(Text.rfind("IDQ_MS_UOPS,L2_RQSTS_MISS,dynamic_energy_j\n", 0),
            0u);
}

TEST(DatasetIo, TextRoundTripIsExact) {
  Dataset Original = makeToy();
  auto Parsed = datasetFromCsv(datasetToCsv(Original));
  ASSERT_TRUE(bool(Parsed));
  ASSERT_EQ(Parsed->numRows(), Original.numRows());
  ASSERT_EQ(Parsed->featureNames(), Original.featureNames());
  for (size_t R = 0; R < Original.numRows(); ++R) {
    EXPECT_EQ(Parsed->row(R), Original.row(R));
    EXPECT_DOUBLE_EQ(Parsed->target(R), Original.target(R));
  }
}

TEST(DatasetIo, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "slope_dataset_io.csv";
  ASSERT_TRUE(bool(writeDatasetCsv(makeToy(), Path)));
  auto Parsed = readDatasetCsv(Path);
  std::remove(Path.c_str());
  ASSERT_TRUE(bool(Parsed));
  EXPECT_EQ(Parsed->numRows(), 2u);
  EXPECT_DOUBLE_EQ(Parsed->target(1), 702.125);
}

TEST(DatasetIo, EmptyDatasetSerializesHeaderOnly) {
  Dataset D({"a"});
  auto Parsed = datasetFromCsv(datasetToCsv(D));
  ASSERT_TRUE(bool(Parsed));
  EXPECT_EQ(Parsed->numRows(), 0u);
  EXPECT_EQ(Parsed->numFeatures(), 1u);
}

TEST(DatasetIo, RejectsNonNumericCells) {
  auto Parsed = datasetFromCsv("a,dynamic_energy_j\nhello,3\n");
  ASSERT_FALSE(bool(Parsed));
  EXPECT_NE(Parsed.error().message().find("hello"), std::string::npos);
}

TEST(DatasetIo, RejectsSingleColumn) {
  auto Parsed = datasetFromCsv("only\n1\n");
  ASSERT_FALSE(bool(Parsed));
}

TEST(DatasetIo, ExtremeValuesSurviveRoundTrip) {
  Dataset D({"x"});
  D.addRow({1e-308}, 1e308);
  D.addRow({0.1 + 0.2}, -0.0);
  auto Parsed = datasetFromCsv(datasetToCsv(D));
  ASSERT_TRUE(bool(Parsed));
  EXPECT_DOUBLE_EQ(Parsed->row(0)[0], 1e-308);
  EXPECT_DOUBLE_EQ(Parsed->target(0), 1e308);
  EXPECT_DOUBLE_EQ(Parsed->row(1)[0], 0.1 + 0.2);
}
