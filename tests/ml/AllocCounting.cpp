//===- tests/ml/AllocCounting.cpp - Armed operator-new counter -----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "AllocCounting.h"

#include <atomic>
#include <cstdlib>
#include <new>

static std::atomic<bool> AllocCountingArmed{false};
static std::atomic<size_t> ArmedAllocationCount{0};

void slope::test::allocCountingArm() {
  ArmedAllocationCount.store(0, std::memory_order_relaxed);
  AllocCountingArmed.store(true, std::memory_order_relaxed);
}

void slope::test::allocCountingDisarm() {
  AllocCountingArmed.store(false, std::memory_order_relaxed);
}

size_t slope::test::armedAllocationCount() {
  return ArmedAllocationCount.load(std::memory_order_relaxed);
}

// GCC does not model user replacement of the global allocation functions
// and flags the malloc/free pairing inside them as mismatched new/delete;
// replacement is exactly what makes the pairing correct here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *operator new(std::size_t Size) {
  if (AllocCountingArmed.load(std::memory_order_relaxed))
    ArmedAllocationCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size) { return ::operator new(Size); }

void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
