//===- tests/ml/NnAlgorithmTest.cpp - Batched vs naive NN training -------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Property tests that the batched GEMM training kernel reproduces the
// per-sample seed kernel bit for bit — identical loss curves, weights,
// and predictions across topologies, activations, batch sizes, seeds and
// thread counts — and that its epoch loop performs zero heap allocations
// after the per-fit arena setup.
//
//===----------------------------------------------------------------------===//

#include "AllocCounting.h"

#include "ml/NeuralNetwork.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace slope;
using namespace slope::ml;

namespace {

Dataset syntheticData(uint64_t Seed, size_t Rows, size_t Cols) {
  Rng R(Seed);
  std::vector<std::string> Names;
  for (size_t J = 0; J < Cols; ++J)
    Names.push_back("f" + std::to_string(J));
  Dataset D(Names);
  for (size_t I = 0; I < Rows; ++I) {
    std::vector<double> X(Cols);
    double Y = 0;
    for (size_t J = 0; J < Cols; ++J) {
      X[J] = R.uniform(0, 10);
      Y += static_cast<double>(J + 1) * X[J];
    }
    D.addRow(X, Y + R.gaussian(0, 0.5));
  }
  return D;
}

/// Fits one network with each kernel on \p Train (identical options
/// otherwise) and requires bit-identical training losses and predictions
/// on \p Test.
void expectKernelsAgree(NeuralNetworkOptions Options, const Dataset &Train,
                        const Dataset &Test) {
  Options.Algorithm = NnAlgorithm::Batched;
  NeuralNetwork Fast(Options);
  ASSERT_TRUE(bool(Fast.fit(Train)));
  Options.Algorithm = NnAlgorithm::Naive;
  NeuralNetwork Reference(Options);
  ASSERT_TRUE(bool(Reference.fit(Train)));

  double FastLoss = Fast.finalTrainingLoss();
  double RefLoss = Reference.finalTrainingLoss();
  EXPECT_EQ(std::memcmp(&FastLoss, &RefLoss, sizeof(double)), 0)
      << "final loss " << FastLoss << " vs " << RefLoss;

  std::vector<double> FastPred = Fast.predictBatch(Test);
  std::vector<double> RefPred = Reference.predictBatch(Test);
  ASSERT_EQ(FastPred.size(), RefPred.size());
  for (size_t R = 0; R < FastPred.size(); ++R)
    EXPECT_EQ(std::memcmp(&FastPred[R], &RefPred[R], sizeof(double)), 0)
        << "row " << R << ": " << FastPred[R] << " vs " << RefPred[R];
}

TEST(NnAlgorithm, BatchedMatchesNaiveAcrossTopologiesAndActivations) {
  // Depth 0 (a single linear layer) through depth 2, under every
  // transfer function, over a couple of init/shuffle seeds.
  const std::vector<std::vector<size_t>> Topologies = {
      {}, {8}, {16}, {8, 4}};
  const Activation Transfers[] = {Activation::Identity, Activation::ReLU,
                                  Activation::Tanh};
  uint64_t DataSeed = 40;
  for (const auto &Hidden : Topologies)
    for (Activation Transfer : Transfers) {
      Dataset Train = syntheticData(++DataSeed, 70, 5);
      Dataset Test = syntheticData(++DataSeed, 25, 5);
      NeuralNetworkOptions Options;
      Options.HiddenLayers = Hidden;
      Options.Transfer = Transfer;
      Options.Epochs = 15;
      Options.Seed = 0x90 + DataSeed;
      expectKernelsAgree(Options, Train, Test);
    }
}

TEST(NnAlgorithm, BatchedMatchesNaiveAcrossBatchSizes) {
  // Batch 1 (pure SGD), a size that does not divide N (partial final
  // minibatch), the default, and one larger than N (full-batch clamp).
  Dataset Train = syntheticData(60, 70, 4);
  Dataset Test = syntheticData(61, 25, 4);
  for (size_t BatchSize : {size_t{1}, size_t{7}, size_t{32}, size_t{500}}) {
    NeuralNetworkOptions Options;
    Options.HiddenLayers = {8};
    Options.Transfer = Activation::Tanh;
    Options.Epochs = 12;
    Options.BatchSize = BatchSize;
    expectKernelsAgree(Options, Train, Test);
  }
}

TEST(NnAlgorithm, BatchedMatchesNaiveAcrossThreadCounts) {
  // Training itself is sequential, but fit()'s standardization runs on
  // the global pool; the kernels must agree (and match the 1-thread
  // result) at any thread count.
  Dataset Train = syntheticData(70, 80, 5);
  Dataset Test = syntheticData(71, 25, 5);
  NeuralNetworkOptions Options;
  Options.HiddenLayers = {16};
  Options.Transfer = Activation::ReLU;
  Options.Epochs = 12;

  Options.Algorithm = NnAlgorithm::Batched;
  ThreadPool::setGlobalThreadCount(1);
  NeuralNetwork Serial(Options);
  ASSERT_TRUE(bool(Serial.fit(Train)));
  std::vector<double> SerialPred = Serial.predictBatch(Test);

  for (unsigned Threads : {2u, 8u}) {
    ThreadPool::setGlobalThreadCount(Threads);
    expectKernelsAgree(Options, Train, Test);
    NeuralNetwork Threaded(Options);
    ASSERT_TRUE(bool(Threaded.fit(Train)));
    std::vector<double> ThreadedPred = Threaded.predictBatch(Test);
    ASSERT_EQ(ThreadedPred.size(), SerialPred.size());
    for (size_t R = 0; R < ThreadedPred.size(); ++R)
      EXPECT_EQ(
          std::memcmp(&ThreadedPred[R], &SerialPred[R], sizeof(double)), 0)
          << Threads << " threads, row " << R;
  }
  ThreadPool::setGlobalThreadCount(0); // restore hardware default
}

TEST(NnAlgorithm, DefaultAlgorithmIsOverridable) {
  NnAlgorithm Saved = defaultNnAlgorithm();
  EXPECT_NE(Saved, NnAlgorithm::Default);
  setDefaultNnAlgorithm(NnAlgorithm::Naive);
  EXPECT_EQ(defaultNnAlgorithm(), NnAlgorithm::Naive);
  setDefaultNnAlgorithm(Saved);
  EXPECT_EQ(defaultNnAlgorithm(), Saved);
}

TEST(NnAlgorithm, BatchedEpochLoopDoesNotAllocate) {
  Dataset Train = syntheticData(90, 120, 6);
  NeuralNetworkOptions Options;
  Options.HiddenLayers = {16, 8};
  Options.Transfer = Activation::Tanh;
  Options.Epochs = 10;
  Options.BatchSize = 32; // does not divide 120: partial batch included
  Options.Algorithm = NnAlgorithm::Batched;

  detail::NnFitPhaseProbe = [](bool Entering) {
    if (Entering)
      test::allocCountingArm();
    else
      test::allocCountingDisarm();
  };
  NeuralNetwork M(Options);
  ASSERT_TRUE(bool(M.fit(Train)));
  detail::NnFitPhaseProbe = nullptr;

  EXPECT_EQ(test::armedAllocationCount(), 0u)
      << "batched epoch loop allocated after arena setup";
}

} // namespace
