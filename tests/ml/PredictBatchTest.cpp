//===- tests/ml/PredictBatchTest.cpp - Batch inference equivalence -------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// predictBatch overrides must be bit-identical to the row-by-row predict
// path for every model family (the paper tables are rendered from batch
// predictions, so any divergence would change published numbers).
//
//===----------------------------------------------------------------------===//

#include "ml/KnnRegressor.h"
#include "ml/LinearRegression.h"
#include "ml/NeuralNetwork.h"
#include "ml/RandomForest.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace slope;
using namespace slope::ml;

namespace {

Dataset syntheticData(uint64_t Seed, size_t Rows, size_t Cols) {
  Rng R(Seed);
  std::vector<std::string> Names;
  for (size_t J = 0; J < Cols; ++J)
    Names.push_back("f" + std::to_string(J));
  Dataset D(Names);
  for (size_t I = 0; I < Rows; ++I) {
    std::vector<double> X(Cols);
    double Y = 0;
    for (size_t J = 0; J < Cols; ++J) {
      X[J] = R.uniform(0, 10);
      Y += static_cast<double>(J + 1) * X[J];
    }
    D.addRow(X, Y + R.gaussian(0, 0.5));
  }
  return D;
}

/// Requires predictBatch to equal predict row by row, bit for bit.
void expectBatchMatchesRowByRow(const Model &M, const Dataset &Test) {
  std::vector<double> Batch = M.predictBatch(Test);
  ASSERT_EQ(Batch.size(), Test.numRows());
  for (size_t R = 0; R < Test.numRows(); ++R) {
    double Single = M.predict(Test.row(R));
    EXPECT_EQ(std::memcmp(&Batch[R], &Single, sizeof(double)), 0)
        << M.name() << " row " << R << ": " << Batch[R] << " vs " << Single;
  }
}

TEST(PredictBatch, LinearRegressionMatchesRowByRow) {
  Dataset Train = syntheticData(1, 120, 5);
  Dataset Test = syntheticData(2, 40, 5);
  LinearRegression M;
  ASSERT_TRUE(bool(M.fit(Train)));
  expectBatchMatchesRowByRow(M, Test);
}

TEST(PredictBatch, DecisionTreeMatchesRowByRow) {
  Dataset Train = syntheticData(3, 120, 5);
  Dataset Test = syntheticData(4, 40, 5);
  DecisionTree M;
  ASSERT_TRUE(bool(M.fit(Train)));
  expectBatchMatchesRowByRow(M, Test);
}

TEST(PredictBatch, RandomForestMatchesRowByRow) {
  Dataset Train = syntheticData(5, 100, 5);
  Dataset Test = syntheticData(6, 40, 5);
  RandomForestOptions Options;
  Options.NumTrees = 20;
  RandomForest M(Options);
  ASSERT_TRUE(bool(M.fit(Train)));
  expectBatchMatchesRowByRow(M, Test);
}

TEST(PredictBatch, NeuralNetworkMatchesRowByRow) {
  Dataset Train = syntheticData(7, 100, 5);
  Dataset Test = syntheticData(8, 40, 5);
  NeuralNetworkOptions Options;
  Options.Epochs = 20;
  NeuralNetwork M(Options);
  ASSERT_TRUE(bool(M.fit(Train)));
  expectBatchMatchesRowByRow(M, Test);
}

TEST(PredictBatch, KnnRegressorMatchesRowByRow) {
  // The k-NN override standardizes queries straight from the columnar
  // storage and reuses one distance scratch across rows.
  Dataset Train = syntheticData(9, 80, 4);
  Dataset Test = syntheticData(10, 30, 4);
  KnnRegressor M;
  ASSERT_TRUE(bool(M.fit(Train)));
  expectBatchMatchesRowByRow(M, Test);
}

TEST(PredictBatch, KnnRegressorUnweightedMatchesRowByRow) {
  Dataset Train = syntheticData(12, 60, 3);
  Dataset Test = syntheticData(13, 20, 3);
  KnnOptions Options;
  Options.K = 3;
  Options.DistanceWeighted = false;
  KnnRegressor M(Options);
  ASSERT_TRUE(bool(M.fit(Train)));
  expectBatchMatchesRowByRow(M, Test);
}

/// A model with no predictBatch override: predicts the sum of the row's
/// features, so the base-class row-gather path is what's under test.
class RowSumModel : public Model {
public:
  Expected<bool> fit(const Dataset &) override { return true; }
  double predict(const std::vector<double> &Features) const override {
    double Sum = 0;
    for (double F : Features)
      Sum += F;
    return Sum;
  }
  std::string name() const override { return "RowSum"; }
};

TEST(PredictBatch, BaseClassFallbackMatchesRowByRow) {
  // Every shipped family overrides predictBatch now, so a local dummy
  // model exercises the Model default implementation (gather into a
  // reused row buffer).
  Dataset Test = syntheticData(10, 30, 4);
  RowSumModel M;
  expectBatchMatchesRowByRow(M, Test);
}

TEST(PredictBatch, EmptyTestSetYieldsEmptyPredictions) {
  Dataset Train = syntheticData(11, 50, 3);
  LinearRegression M;
  ASSERT_TRUE(bool(M.fit(Train)));
  Dataset Empty({"f0", "f1", "f2"});
  EXPECT_TRUE(M.predictBatch(Empty).empty());
}

} // namespace
