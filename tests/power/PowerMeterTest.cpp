//===- tests/power/PowerMeterTest.cpp - Power meter tests -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "power/PowerMeter.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::power;
using namespace slope::sim;

namespace {
Execution longRun(Machine &M) {
  return M.run(Application(KernelKind::MklDgemm, 16000)); // ~10 s class.
}
} // namespace

TEST(WattsUpProMeter, TotalEnergyNearTruth) {
  Machine M(Platform::intelHaswellServer(), 1);
  WattsUpProMeter Meter;
  Execution E = longRun(M);
  double Truth = E.TrueDynamicEnergyJ +
                 M.platform().IdlePowerWatts * E.totalTimeSec();
  double Measured = Meter.measureTotalEnergyJ(M, E);
  EXPECT_NEAR(Measured / Truth, 1.0, 0.03);
}

TEST(WattsUpProMeter, RepeatedMeasurementsDiffer) {
  Machine M(Platform::intelHaswellServer(), 2);
  WattsUpProMeter Meter;
  Execution E = longRun(M);
  double A = Meter.measureTotalEnergyJ(M, E);
  double B = Meter.measureTotalEnergyJ(M, E);
  EXPECT_NE(A, B); // Fresh sampling alignment and sensor noise.
  EXPECT_NEAR(A / B, 1.0, 0.05);
}

TEST(WattsUpProMeter, ShortRunStillMeasured) {
  // Sub-second runs fall below the 1 Hz sampling period; the device
  // takes a single mid-run sample.
  Machine M(Platform::intelHaswellServer(), 3);
  WattsUpProMeter Meter;
  Execution E = M.run(Application(KernelKind::MklDgemm, 1024));
  ASSERT_LT(E.totalTimeSec(), 1.0);
  double Measured = Meter.measureTotalEnergyJ(M, E);
  EXPECT_GT(Measured, 0.0);
}

TEST(WattsUpProMeter, IdlePowerCalibration) {
  Machine M(Platform::intelSkylakeServer(), 4);
  WattsUpProMeter Meter;
  double Idle = Meter.measureIdlePowerW(M, 60.0);
  EXPECT_NEAR(Idle, 32.0, 0.5);
}

TEST(WattsUpProMeter, GainErrorBiasesReadings) {
  Machine M(Platform::intelHaswellServer(), 5);
  WattsUpOptions Drifted;
  Drifted.GainError = 0.10;
  Drifted.SensorNoiseFraction = 0.0;
  Drifted.QuantizationW = 0.0;
  WattsUpProMeter Meter(Drifted);
  double Idle = Meter.measureIdlePowerW(M, 10.0);
  EXPECT_NEAR(Idle, 58.0 * 1.10, 1e-9);
}

TEST(WattsUpProMeter, QuantizationRoundsToResolution) {
  Machine M(Platform::intelHaswellServer(), 6);
  WattsUpOptions Clean;
  Clean.SensorNoiseFraction = 0.0;
  Clean.QuantizationW = 0.5;
  WattsUpProMeter Meter(Clean);
  double Idle = Meter.measureIdlePowerW(M, 5.0);
  EXPECT_DOUBLE_EQ(std::fmod(Idle, 0.5), 0.0);
}

TEST(WattsUpProMeter, CompoundProfileIntegratesBothPhases) {
  Machine M(Platform::intelHaswellServer(), 7);
  WattsUpProMeter Meter;
  CompoundApplication App(Application(KernelKind::MklDgemm, 14000),
                          Application(KernelKind::Stream, 1500000000u));
  Execution E = M.run(App);
  double Truth = E.TrueDynamicEnergyJ +
                 M.platform().IdlePowerWatts * E.totalTimeSec();
  EXPECT_NEAR(Meter.measureTotalEnergyJ(M, E) / Truth, 1.0, 0.04);
}
