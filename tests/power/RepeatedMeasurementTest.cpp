//===- tests/power/RepeatedMeasurementTest.cpp - Methodology tests --------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "power/RepeatedMeasurement.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::power;

TEST(RepeatedMeasurement, ConstantObservableConvergesAtMinRuns) {
  MeasurementResult Result = measureRepeatedly([] { return 100.0; });
  EXPECT_TRUE(Result.Converged);
  EXPECT_EQ(Result.Runs, 3u);
  EXPECT_DOUBLE_EQ(Result.Mean, 100.0);
  EXPECT_DOUBLE_EQ(Result.CiHalfWidth, 0.0);
}

TEST(RepeatedMeasurement, LowNoiseConvergesQuickly) {
  Rng R(1);
  MeasurementResult Result = measureRepeatedly(
      [&R] { return R.gaussian(50.0, 0.1); });
  EXPECT_TRUE(Result.Converged);
  EXPECT_LT(Result.Runs, 10u);
  EXPECT_NEAR(Result.Mean, 50.0, 0.5);
}

TEST(RepeatedMeasurement, HighNoiseTakesMoreRuns) {
  Rng LowRng(2), HighRng(2);
  MeasurementPolicy Policy;
  Policy.MaxRuns = 200;
  MeasurementResult Low = measureRepeatedly(
      [&LowRng] { return LowRng.gaussian(50.0, 0.2); }, Policy);
  MeasurementResult High = measureRepeatedly(
      [&HighRng] { return HighRng.gaussian(50.0, 5.0); }, Policy);
  EXPECT_LT(Low.Runs, High.Runs);
}

TEST(RepeatedMeasurement, GivesUpAtMaxRuns) {
  Rng R(3);
  MeasurementPolicy Policy;
  Policy.MaxRuns = 5;
  MeasurementResult Result = measureRepeatedly(
      [&R] { return R.gaussian(1.0, 100.0); }, Policy);
  EXPECT_FALSE(Result.Converged);
  EXPECT_EQ(Result.Runs, 5u);
  // Mean/CI are still reported for the samples taken.
  EXPECT_EQ(Result.Samples.size(), 5u);
  EXPECT_GT(Result.CiHalfWidth, 0.0);
}

TEST(RepeatedMeasurement, RespectsMinRuns) {
  MeasurementPolicy Policy;
  Policy.MinRuns = 7;
  Policy.MaxRuns = 30;
  MeasurementResult Result =
      measureRepeatedly([] { return 42.0; }, Policy);
  EXPECT_EQ(Result.Runs, 7u);
}

TEST(RepeatedMeasurement, TighterPrecisionNeedsMoreRuns) {
  Rng CoarseRng(5), FineRng(5);
  MeasurementPolicy Coarse, Fine;
  Coarse.PrecisionFraction = 0.10;
  Fine.PrecisionFraction = 0.01;
  Coarse.MaxRuns = Fine.MaxRuns = 500;
  MeasurementResult A = measureRepeatedly(
      [&CoarseRng] { return CoarseRng.gaussian(10.0, 1.0); }, Coarse);
  MeasurementResult B = measureRepeatedly(
      [&FineRng] { return FineRng.gaussian(10.0, 1.0); }, Fine);
  EXPECT_LE(A.Runs, B.Runs);
}
