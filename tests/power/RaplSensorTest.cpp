//===- tests/power/RaplSensorTest.cpp - On-chip sensor tests --------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "power/RaplSensor.h"

#include "power/HclWattsUp.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slope;
using namespace slope::power;
using namespace slope::sim;

TEST(RaplSensor, IdleReadingMissesBoardPower) {
  Machine M(Platform::intelHaswellServer(), 1);
  RaplSensor Sensor;
  double Idle = Sensor.measureIdlePowerW(M, 10.0);
  EXPECT_NEAR(Idle, 58.0 * 0.80, 1.0);
}

TEST(RaplSensor, LowVarianceAcrossReadings) {
  Machine M(Platform::intelHaswellServer(), 2);
  RaplSensor Sensor;
  Execution E = M.run(Application(KernelKind::MklDgemm, 14000));
  double A = Sensor.measureTotalEnergyJ(M, E);
  double B = Sensor.measureTotalEnergyJ(M, E);
  EXPECT_NE(A, B);
  EXPECT_NEAR(A / B, 1.0, 0.01); // Bias, not noise, is its weakness.
}

TEST(RaplSensor, ComputeBoundWorkloadReadsHigh) {
  // CoreGain 1.05 over-attributes compute energy.
  Machine M(Platform::intelSkylakeServer(), 3);
  RaplSensor Sensor;
  Execution E = M.run(Application(KernelKind::MklDgemm, 16000));
  EnergyModel::EnergySplit Split =
      M.energyModel().dynamicEnergySplit(E.totalActivities());
  ASSERT_GT(Split.ComputeJ, Split.MemoryJ); // DGEMM is compute-bound.
  double TrueDynamic = E.TrueDynamicEnergyJ;
  double SensorDynamic =
      Sensor.measureTotalEnergyJ(M, E) -
      Sensor.measureIdlePowerW(M, 5.0) * E.totalTimeSec();
  EXPECT_GT(SensorDynamic, TrueDynamic * 0.98);
}

TEST(RaplSensor, MemoryBoundWorkloadReadsLow) {
  // DramGain 0.82 under-reports the memory plane.
  Machine M(Platform::intelHaswellServer(), 4);
  RaplSensor Sensor;
  Execution E = M.run(Application(KernelKind::Stream, 4000000000ull));
  double TrueDynamic = E.TrueDynamicEnergyJ;
  double SensorDynamic =
      Sensor.measureTotalEnergyJ(M, E) -
      Sensor.measureIdlePowerW(M, 5.0) * E.totalTimeSec();
  EXPECT_LT(SensorDynamic, TrueDynamic);
}

TEST(RaplSensor, UnbiasedConfigurationTracksTruth) {
  RaplOptions Perfect;
  Perfect.CoreGain = 1.0;
  Perfect.DramGain = 1.0;
  Perfect.IdleVisibleFraction = 1.0;
  Perfect.NoiseSigma = 0.0;
  Machine M(Platform::intelHaswellServer(), 5);
  RaplSensor Sensor(Perfect);
  Execution E = M.run(Application(KernelKind::MklDgemm, 12000));
  double Expected = E.TrueDynamicEnergyJ +
                    M.platform().IdlePowerWatts * E.totalTimeSec();
  // The sensor reconstructs energy from the activity model, so even with
  // unit gains it misses the run's unobservable thermal/voltage variance
  // (~3% lognormal) that TrueDynamicEnergyJ carries.
  EXPECT_NEAR(Sensor.measureTotalEnergyJ(M, E) / Expected, 1.0, 0.1);
}

TEST(RaplSensor, WorksAsHclWattsUpBackend) {
  // The facade accepts any PowerMeter, including the on-chip sensor.
  Machine M(Platform::intelSkylakeServer(), 6);
  HclWattsUp Rig(M, std::make_unique<RaplSensor>());
  EnergyReading Reading =
      Rig.measureRun(CompoundApplication(Application(KernelKind::MklFft,
                                                     26000)));
  EXPECT_GT(Reading.DynamicEnergyJ, 0.0);
  EXPECT_NEAR(Reading.DynamicEnergyJ,
              Reading.TotalEnergyJ - Rig.staticPowerW() * Reading.TimeSec,
              1e-9);
}

TEST(RaplSensor, Name) {
  EXPECT_EQ(RaplSensor().name(), "RAPL (on-chip)");
}
