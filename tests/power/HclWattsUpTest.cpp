//===- tests/power/HclWattsUpTest.cpp - HCLWattsUp facade tests -----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "power/HclWattsUp.h"

#include <gtest/gtest.h>

using namespace slope;
using namespace slope::power;
using namespace slope::sim;

namespace {
HclWattsUp makeRig(Machine &M, uint64_t Seed = 1) {
  return HclWattsUp(M, std::make_unique<WattsUpProMeter>(WattsUpOptions(),
                                                         Seed));
}
} // namespace

TEST(HclWattsUp, CalibratesStaticPower) {
  Machine M(Platform::intelHaswellServer(), 1);
  HclWattsUp Rig = makeRig(M);
  EXPECT_NEAR(Rig.staticPowerW(), 58.0, 0.5);
}

TEST(HclWattsUp, DynamicEnergyDecomposition) {
  // E_D = E_T - P_S * T_E (paper Sect. 2).
  Machine M(Platform::intelHaswellServer(), 2);
  HclWattsUp Rig = makeRig(M);
  EnergyReading Reading =
      Rig.measureRun(CompoundApplication(Application(KernelKind::MklDgemm,
                                                     16000)));
  EXPECT_NEAR(Reading.DynamicEnergyJ,
              Reading.TotalEnergyJ - Rig.staticPowerW() * Reading.TimeSec,
              1e-9);
  EXPECT_GT(Reading.DynamicEnergyJ, 0.0);
}

TEST(HclWattsUp, DynamicEnergyTracksGroundTruth) {
  Machine M(Platform::intelHaswellServer(), 3);
  HclWattsUp Rig = makeRig(M);
  Execution E = M.run(Application(KernelKind::MklDgemm, 16000));
  EnergyReading Reading = Rig.readingFor(E);
  EXPECT_NEAR(Reading.DynamicEnergyJ / E.TrueDynamicEnergyJ, 1.0, 0.10);
}

TEST(HclWattsUp, RepeatedMethodologyConverges) {
  Machine M(Platform::intelHaswellServer(), 4);
  HclWattsUp Rig = makeRig(M);
  MeasurementPolicy Policy;
  Policy.MaxRuns = 20;
  MeasurementResult Result = Rig.measureDynamicEnergy(
      CompoundApplication(Application(KernelKind::MklDgemm, 16000)), Policy);
  EXPECT_TRUE(Result.Converged);
  EXPECT_GE(Result.Runs, Policy.MinRuns);
  EXPECT_GT(Result.Mean, 0.0);
  EXPECT_LT(Result.CiHalfWidth, Result.Mean * Policy.PrecisionFraction);
}

TEST(HclWattsUp, MeasureRunUsesFreshExecutions) {
  Machine M(Platform::intelHaswellServer(), 5);
  HclWattsUp Rig = makeRig(M);
  CompoundApplication App(Application(KernelKind::MklDgemm, 12000));
  EnergyReading A = Rig.measureRun(App);
  EnergyReading B = Rig.measureRun(App);
  EXPECT_NE(A.TotalEnergyJ, B.TotalEnergyJ);
}
